// Package tracecheck is an offline static-analysis pass over recorded
// traces: it reconstructs the true happens-before relation from matched
// sends/receives, collectives, OpenMP barriers and fork/join events —
// the two-phase vector-clock approach of Sulzmann & Stadtmüller
// (arXiv:1807.03585) applied to LTRC traces — and verifies a battery of
// structural invariants against it.
//
// The paper's whole argument rests on logical timestamps satisfying
// Lamport's clock condition (e → f ⇒ ts(e) < ts(f)) so that Scalasca's
// replay sees causally consistent traces.  tracecheck turns that
// assumption into a checked invariant: every violation is reported as a
// structured record naming the kind, the ranks and regions involved, the
// event indices and the clock values, so a broken clock mode (or a
// corrupted trace) points at the exact offending records.
//
// Checked invariants, per clock mode:
//
//   - clock condition: for every synchronisation edge a → b of a logical
//     trace, ts(a) < ts(b); additionally, sampled causally ordered pairs
//     from the full vector-clock relation must satisfy it transitively.
//   - per-location monotonicity: logical stamps strictly increase along
//     each location's stream; physical (tsc) stamps never decrease.
//   - message matching: every receive has a FIFO-matching send on its
//     (src, dst, tag) channel, and no send is left unconsumed.
//   - collective consistency: each rank observes a communicator's
//     instances in sequence order 0,1,2,…; every instance is joined by
//     the communicator's full membership, exactly once per member, under
//     the same operation name.
//   - barrier consistency: every OpenMP barrier instance is reached by
//     the full team, in per-thread sequence order.
//   - fork/join nesting: forks and joins appear on master threads only,
//     strictly alternating with matching sequence numbers.
//   - piggyback sync: on a logical trace, a synchronisation edge must
//     advance the receiver past the sender's stamp by at least two ticks
//     (fold pb+1, then stamp); an edge that gains exactly one tick means
//     the piggyback was dropped even though the clock condition happens
//     to hold.
//   - region balance: Enter/Exit events nest properly on every location.
package tracecheck

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindClockCondition  Kind = "clock-condition"
	KindMonotonic       Kind = "nonmonotonic-timestamp"
	KindUnmatchedRecv   Kind = "unmatched-recv"
	KindOrphanSend      Kind = "orphan-send"
	KindCollOrder       Kind = "collective-order"
	KindCollParticipant Kind = "collective-participants"
	KindBarrier         Kind = "barrier-mismatch"
	KindForkJoin        Kind = "fork-join"
	KindUnbalanced      Kind = "unbalanced-region"
	KindPiggyback       Kind = "piggyback-sync"
	KindCycle           Kind = "causality-cycle"
)

// EventPos pinpoints one event record with enough context to find it in
// a trace dump: location index, rank/thread, event index, the record
// kind, the innermost enclosing region and the recorded clock value.
type EventPos struct {
	Loc    int    `json:"loc"`
	Index  int    `json:"index"`
	Rank   int    `json:"rank"`
	Thread int    `json:"thread"`
	Kind   string `json:"kind"`
	Region string `json:"region,omitempty"`
	Time   uint64 `json:"time"`
}

func (p EventPos) String() string {
	s := fmt.Sprintf("rank %d thread %d event %d %s t=%d", p.Rank, p.Thread, p.Index, p.Kind, p.Time)
	if p.Region != "" {
		s += " in " + p.Region
	}
	return s
}

// Violation is one invariant breach.  Event is the primary offending
// record; Peer, when set, is the other end of the synchronisation edge
// (the matched send for a receive-side breach, and so on).
type Violation struct {
	Kind   Kind      `json:"kind"`
	Event  EventPos  `json:"event"`
	Peer   *EventPos `json:"peer,omitempty"`
	Detail string    `json:"detail"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Event)
	if v.Peer != nil {
		s += fmt.Sprintf(" <- %s", *v.Peer)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Report summarises one verification run.
type Report struct {
	Clock   string `json:"clock"`
	Logical bool   `json:"logical"` // strict logical-clock invariants applied
	Locs    int    `json:"locations"`
	Events  int    `json:"events"`
	Edges   int    `json:"edges"` // synchronisation edges reconstructed
	// SampledPairs counts the causally ordered event pairs checked
	// transitively through the vector clocks (0 when the audit was
	// skipped for size).
	SampledPairs int `json:"sampled_pairs"`
	// Counts is the total number of violations per kind, including any
	// past the per-kind recording cap.
	Counts     map[Kind]int `json:"counts,omitempty"`
	Violations []Violation  `json:"violations,omitempty"`
	// ReadErrors lists stream read failures encountered while scanning a
	// (possibly damaged) chunked trace.  The verdict then covers only the
	// events that could be decoded.
	ReadErrors []string `json:"read_errors,omitempty"`
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Counts) == 0 }

// NumViolations returns the total violation count across kinds.
func (r *Report) NumViolations() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Render writes a human-readable summary followed by up to limit
// violations (0 = all recorded).
func (r *Report) Render(w io.Writer, limit int) {
	verdict := "OK"
	if !r.OK() {
		verdict = fmt.Sprintf("%d violations", r.NumViolations())
	}
	mode := "physical"
	if r.Logical {
		mode = "logical"
	}
	fmt.Fprintf(w, "tracecheck %s (%s): %d locations, %d events, %d sync edges, %d sampled pairs — %s\n",
		r.Clock, mode, r.Locs, r.Events, r.Edges, r.SampledPairs, verdict)
	kinds := make([]Kind, 0, len(r.Counts))
	for k := range r.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-24s %d\n", k, r.Counts[k])
	}
	n := len(r.Violations)
	if limit > 0 && n > limit {
		n = limit
	}
	for _, v := range r.Violations[:n] {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if n < len(r.Violations) {
		fmt.Fprintf(w, "  ... %d more recorded\n", len(r.Violations)-n)
	}
}

// Options tunes a verification run.  The zero value is the default.
type Options struct {
	// MaxPerKind caps the violations recorded per kind; the totals in
	// Report.Counts keep counting past it.  0 means 100.
	MaxPerKind int
	// MaxVectorCells bounds the vector-clock audit: when events ×
	// locations exceeds it the transitive sampling pass is skipped
	// (edge-wise and monotonicity checks still imply the clock
	// condition).  0 means 50 million cells.
	MaxVectorCells int
	// SamplesPerLoc is the number of evenly spaced events sampled per
	// location for the transitive clock-condition audit.  0 means 4.
	SamplesPerLoc int
	// Partial verifies a still-growing prefix of a trace (the sealed
	// view of a live tail, trace.Follow): only prefix-closed invariants
	// are checked, so a clean run never reports violations mid-stream
	// that its complete trace would not.  Suppressed because the rest of
	// the trace may still legitimately arrive: regions still open at end
	// of stream, sends not yet received, receives whose send's location
	// is sealed less far along, collective/barrier instances and forks
	// whose remaining participants are still running, release edges
	// whose closing Exit has not been recorded, and the vector-clock
	// audit (which needs the complete trace).  Everything prefix-closed
	// still applies: nesting errors, timestamp monotonicity, FIFO
	// matching of the pairs already on disk, sequence ordering, the
	// clock condition and piggyback gain on every reconstructed edge.
	Partial bool
}

func (o Options) fill() Options {
	if o.MaxPerKind == 0 {
		o.MaxPerKind = 100
	}
	if o.MaxVectorCells == 0 {
		o.MaxVectorCells = 50 << 20
	}
	if o.SamplesPerLoc == 0 {
		o.SamplesPerLoc = 4
	}
	return o
}

// Logical reports whether a clock name denotes a logical (Lamport-style,
// piggyback-synchronised) mode, for which the strict invariants apply.
func Logical(clock string) bool { return strings.HasPrefix(clock, "lt_") }

// Verify runs every invariant check against the trace and returns the
// report.  It never fails: structural problems (unmatched receives,
// broken nesting, causality cycles) become violations, so a partially
// corrupted trace still yields a maximally informative report.  Verify
// is VerifyStream over the in-memory trace — both paths run the same
// single-pass checker, so their reports are identical.
func Verify(tr *trace.Trace, opt Options) *Report {
	return verify(trace.StreamTrace(tr), tr, opt)
}

// VerifyStream runs the invariant checks against a trace stream.  The
// per-location pass consumes one cursor at a time and keeps only the
// synchronisation skeleton (sends, receives, collective/barrier/fork
// records and the reconstructed edges) in memory, so verifying a
// chunked on-disk trace is bounded by its communication volume, not its
// event count.  The vector-clock audit still materializes the trace,
// but only below Options.MaxVectorCells — exactly the regime where the
// materialized trace fits comfortably.
func VerifyStream(st *trace.Stream, opt Options) *Report {
	return verify(st, nil, opt)
}

func verify(st *trace.Stream, mat *trace.Trace, opt Options) *Report {
	opt = opt.fill()
	c := &checker{
		st:  st,
		mat: mat,
		opt: opt,
		rep: &Report{
			Clock:   st.Clock,
			Logical: Logical(st.Clock),
			Locs:    st.NumLocs(),
			Events:  st.NumEvents(),
			Counts:  make(map[Kind]int),
		},
	}
	c.scan()
	c.matchMessages()
	c.checkCollectives()
	c.checkBarriers()
	c.checkForkJoin()
	c.rep.Edges = len(c.edges)
	c.checkEdges()
	c.vectorAudit()
	sort.SliceStable(c.rep.Violations, func(i, j int) bool {
		a, b := c.rep.Violations[i], c.rep.Violations[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Event.Loc != b.Event.Loc {
			return a.Event.Loc < b.Event.Loc
		}
		return a.Event.Index < b.Event.Index
	})
	if len(c.rep.Counts) == 0 {
		c.rep.Counts = nil
	}
	return c.rep
}

type chanKey struct{ src, dst, tag int32 }

// exitRef is the lazily resolved far end of a release edge: the Exit
// event closing the region that encloses a collective or barrier
// record.  The scan attaches one to the region stack and fills it in
// when that frame pops (or with the location's last event if the
// region never closes — the old whole-trace exitAfter default; such a
// default is marked provisional so a Partial verification can skip
// edges whose real target has not been recorded yet).
type exitRef struct {
	pos         EventPos
	provisional bool
}

// collPart is one location's participation in a collective, barrier,
// fork or join instance, with every event attribute the later passes
// need captured as the scan streamed past it.
type collPart struct {
	pos      EventPos // the Coll/Barrier/Fork/Join record itself
	enterPos EventPos // enclosing Enter (edge source for collectives)
	exit     *exitRef // exit closing the enclosing region (edge target)
	name     string   // operation (enclosing region) name
	seq      int32    // Fork/Join sequence number
	team     int32    // Barrier team size
}

type recvRec struct {
	pos EventPos
	key chanKey
}

// collSeqRec is one CollEnd observation in a location's stream order,
// for the per-location sequence check and violation reporting.
type collSeqRec struct {
	comm, seq int32
	pos       EventPos
}

// segment is one top-level region segment of a worker location's
// stream, precomputed by the scan with the same recurrence the
// fork/join worker-cursor reconstruction used on the whole trace.
type segment struct{ start, end EventPos }

// edgeRec is a reconstructed synchronisation edge with both endpoint
// positions (and thus timestamps) captured.
type edgeRec struct{ from, to EventPos }

type checker struct {
	st  *trace.Stream
	mat *trace.Trace // set when the caller already holds the trace
	opt Options
	rep *Report

	sends    map[chanKey][]EventPos
	recvs    []recvRec               // global stream order (locations ascending)
	colls    map[[2]int32][]collPart // (comm, seq)
	bars     map[[2]int32][]collPart // (rank, seq)
	forks    map[int32][]collPart    // rank -> forks in stream order
	joins    map[int32][]collPart    // rank -> joins in stream order
	collSeqs [][]collSeqRec          // per location, stream order
	segs     [][]segment             // per worker location

	edges []edgeRec
}

// violate records a violation, honouring the per-kind cap.
func (c *checker) violate(k Kind, ev EventPos, peer *EventPos, format string, args ...any) {
	c.rep.Counts[k]++
	if c.rep.Counts[k] > c.opt.MaxPerKind {
		return
	}
	c.rep.Violations = append(c.rep.Violations, Violation{
		Kind: k, Event: ev, Peer: peer, Detail: fmt.Sprintf(format, args...),
	})
}

// scanFrame is one region-stack entry during the streaming scan.
type scanFrame struct {
	region trace.RegionID
	pos    EventPos // the Enter record
}

// scan performs the per-location streaming pass: region nesting,
// timestamp monotonicity, barrier sequence order, worker segment
// reconstruction, and collection of every synchronisation record with
// its edge endpoints resolved in-stream.
func (c *checker) scan() {
	nloc := c.st.NumLocs()
	c.sends = make(map[chanKey][]EventPos)
	c.colls = make(map[[2]int32][]collPart)
	c.bars = make(map[[2]int32][]collPart)
	c.forks = make(map[int32][]collPart)
	c.joins = make(map[int32][]collPart)
	c.collSeqs = make([][]collSeqRec, nloc)
	c.segs = make([][]segment, nloc)

	var stack []scanFrame
	var pending [][]*exitRef // by stack depth at attach time
	for li := 0; li < nloc; li++ {
		l := c.st.Loc(li)
		worker := l.Thread != 0
		stack = stack[:0]
		for d := range pending {
			pending[d] = pending[d][:0]
		}
		var open []*exitRef
		attach := func(er *exitRef) {
			d := len(stack)
			for len(pending) <= d {
				pending = append(pending, nil)
			}
			pending[d] = append(pending[d], er)
			open = append(open, er)
		}

		barNext := int32(0)
		var prev EventPos
		havePrev := false
		// Worker segment recurrence (the old regionEnd walk): a segment
		// runs until the depth counter returns to zero on an Exit.
		segDepth := 0
		segOpen := false
		var segStart EventPos

		cur := c.st.Cursor(li)
		ei := 0
		for e, ok := cur.Next(); ok; e, ok = cur.Next() {
			p := EventPos{
				Loc: li, Index: ei, Rank: l.Rank, Thread: l.Thread,
				Kind: e.Kind.String(), Time: e.Time,
			}
			if n := len(stack); n > 0 {
				if reg := stack[n-1].region; reg >= 0 && int(reg) < len(c.st.Regions) {
					p.Region = c.st.Regions[reg].Name
				}
			}
			if havePrev {
				if c.rep.Logical && e.Time <= prev.Time {
					pp := prev
					c.violate(KindMonotonic, p, &pp,
						"logical stamp %d does not exceed predecessor %d", e.Time, prev.Time)
				} else if !c.rep.Logical && e.Time < prev.Time {
					pp := prev
					c.violate(KindMonotonic, p, &pp,
						"stamp %d runs backwards from %d", e.Time, prev.Time)
				}
			}

			switch e.Kind {
			case trace.EvEnter:
				stack = append(stack, scanFrame{region: e.Region, pos: p})
			case trace.EvExit:
				if d := len(stack); d < len(pending) {
					for _, er := range pending[d] {
						er.pos = p
					}
					pending[d] = pending[d][:0]
				}
				if len(stack) == 0 {
					c.violate(KindUnbalanced, p, nil, "exit without matching enter")
				} else {
					stack = stack[:len(stack)-1]
				}
			case trace.EvSend:
				k := chanKey{int32(l.Rank), e.A, e.B}
				c.sends[k] = append(c.sends[k], p)
			case trace.EvRecv:
				c.recvs = append(c.recvs, recvRec{pos: p, key: chanKey{e.A, int32(l.Rank), e.B}})
			case trace.EvCollEnd:
				enter := p
				if n := len(stack); n > 0 {
					enter = stack[n-1].pos
				}
				er := &exitRef{}
				attach(er)
				key := [2]int32{e.A, e.B}
				c.colls[key] = append(c.colls[key], collPart{
					pos: p, enterPos: enter, exit: er, name: p.Region,
				})
				c.collSeqs[li] = append(c.collSeqs[li], collSeqRec{comm: e.A, seq: e.B, pos: p})
			case trace.EvBarrier:
				if e.B != barNext {
					c.violate(KindBarrier, p, nil,
						"barrier seq %d observed where seq %d was expected", e.B, barNext)
					barNext = e.B + 1
				} else {
					barNext++
				}
				er := &exitRef{}
				attach(er)
				c.bars[[2]int32{int32(l.Rank), e.B}] = append(c.bars[[2]int32{int32(l.Rank), e.B}], collPart{
					pos: p, enterPos: p, exit: er, name: p.Region, team: e.A,
				})
			case trace.EvFork:
				if l.Thread != 0 {
					c.violate(KindForkJoin, p, nil, "fork recorded on worker thread")
				}
				c.forks[int32(l.Rank)] = append(c.forks[int32(l.Rank)], collPart{pos: p, seq: e.B})
			case trace.EvJoin:
				if l.Thread != 0 {
					c.violate(KindForkJoin, p, nil, "join recorded on worker thread")
				}
				c.joins[int32(l.Rank)] = append(c.joins[int32(l.Rank)], collPart{pos: p, seq: e.B})
			}

			if worker {
				if !segOpen {
					segStart = p
					segOpen = true
				}
				switch e.Kind {
				case trace.EvEnter:
					segDepth++
				case trace.EvExit:
					segDepth--
					if segDepth == 0 {
						c.segs[li] = append(c.segs[li], segment{start: segStart, end: p})
						segOpen = false
					}
				}
			}

			prev = p
			havePrev = true
			ei++
		}
		if err := cur.Err(); err != nil {
			c.rep.ReadErrors = append(c.rep.ReadErrors, fmt.Sprintf("location %d: %v", li, err))
		}
		// Unresolved release edges default to the location's last event,
		// like the whole-trace exitAfter did.
		for _, er := range open {
			if er.pos.Kind == "" {
				er.pos = prev
				er.provisional = true
			}
		}
		if worker && segOpen {
			c.segs[li] = append(c.segs[li], segment{start: segStart, end: prev})
		}
		if len(stack) > 0 && !c.opt.Partial {
			c.violate(KindUnbalanced, stack[len(stack)-1].pos, nil,
				"%d region(s) never exited before end of stream", len(stack))
		}
	}
}

// matchMessages pairs receives with sends FIFO per (src, dst, tag)
// channel, emitting one edge per matched pair, one unmatched-recv
// violation per receive that has no send, and one orphan-send violation
// per send never consumed (the signature of a dropped receive).
func (c *checker) matchMessages() {
	pending := make(map[chanKey][]EventPos, len(c.sends))
	for k, v := range c.sends {
		pending[k] = v
	}
	for _, r := range c.recvs {
		q := pending[r.key]
		if len(q) == 0 {
			// On a prefix, the sender's location may simply be sealed
			// less far along than the receiver's.
			if !c.opt.Partial {
				c.violate(KindUnmatchedRecv, r.pos, nil,
					"no matching send on channel src=%d dst=%d tag=%d", r.key.src, r.key.dst, r.key.tag)
			}
			continue
		}
		c.edges = append(c.edges, edgeRec{from: q[0], to: r.pos})
		pending[r.key] = q[1:]
	}
	keys := make([]chanKey, 0, len(pending))
	for k := range pending {
		if len(pending[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	if c.opt.Partial {
		return // unconsumed sends may still be received
	}
	for _, k := range keys {
		for _, s := range pending[k] {
			c.violate(KindOrphanSend, s, nil,
				"send to rank %d tag %d never received (dropped receive?)", k.dst, k.tag)
		}
	}
}

// checkCollectives verifies per-location sequence ordering, full and
// exactly-once participation, and operation-name agreement for every
// collective instance, then emits the all-to-all release edges.
func (c *checker) checkCollectives() {
	keys := sortedKeys2(c.colls)
	// Communicator membership: every location that ever participates.
	members := make(map[int32]map[int]bool)
	perLocSeqs := make(map[int32]map[int][]int32) // comm -> loc -> seqs in stream order
	for _, k := range keys {
		comm := k[0]
		if members[comm] == nil {
			members[comm] = make(map[int]bool)
			perLocSeqs[comm] = make(map[int][]int32)
		}
		for _, p := range c.colls[k] {
			members[comm][p.pos.Loc] = true
		}
	}
	for li := range c.collSeqs {
		for _, r := range c.collSeqs[li] {
			perLocSeqs[r.comm][li] = append(perLocSeqs[r.comm][li], r.seq)
		}
	}
	comms := make([]int32, 0, len(members))
	for comm := range members {
		comms = append(comms, comm)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	for _, comm := range comms {
		locs := sortedInts(members[comm])
		for _, li := range locs {
			seqs := perLocSeqs[comm][li]
			for i, s := range seqs {
				if int32(i) != s {
					pos := c.findColl(li, comm, s)
					c.violate(KindCollOrder, pos, nil,
						"rank %d observes comm %d instance seq %d at position %d (expected seq %d)",
						c.st.Loc(li).Rank, comm, s, i, i)
					break
				}
			}
		}
	}
	for _, k := range keys {
		comm, seq := k[0], k[1]
		parts := c.colls[k]
		seen := make(map[int]int)
		for _, p := range parts {
			seen[p.pos.Loc]++
		}
		first := parts[0]
		for _, li := range sortedInts(members[comm]) {
			switch n := seen[li]; {
			case n == 0:
				if c.opt.Partial {
					continue // the rank may not have reached the instance yet
				}
				c.violate(KindCollParticipant, first.pos, nil,
					"rank %d missing from comm %d collective instance seq %d",
					c.st.Loc(li).Rank, comm, seq)
			case n > 1:
				c.violate(KindCollParticipant, first.pos, nil,
					"rank %d participates %d times in comm %d instance seq %d",
					c.st.Loc(li).Rank, n, comm, seq)
			}
		}
		for _, p := range parts[1:] {
			if p.name != first.name {
				fp := first.pos
				c.violate(KindCollParticipant, p.pos, &fp,
					"operation %q does not match %q on comm %d instance seq %d",
					p.name, first.name, comm, seq)
			}
		}
		c.allToAll(parts)
	}
}

// findColl locates the CollEnd record of (comm, seq) on a location for
// violation reporting.
func (c *checker) findColl(li int, comm, seq int32) EventPos {
	for _, r := range c.collSeqs[li] {
		if r.comm == comm && r.seq == seq {
			return r.pos
		}
	}
	l := c.st.Loc(li)
	return EventPos{Loc: li, Rank: l.Rank, Thread: l.Thread}
}

// allToAll emits the release edges of one collective or barrier
// instance: every participant's exit happens after every participant's
// contribution.
func (c *checker) allToAll(parts []collPart) {
	for _, a := range parts {
		for _, b := range parts {
			if a.pos.Loc == b.pos.Loc {
				continue
			}
			if c.opt.Partial && b.exit.provisional {
				continue // the releasing Exit is not on disk yet
			}
			c.edges = append(c.edges, edgeRec{from: a.enterPos, to: b.exit.pos})
		}
	}
}

// checkBarriers verifies that each OpenMP barrier instance is reached by
// the full team (the per-thread sequence order was checked in-stream by
// the scan), then emits its edges.
func (c *checker) checkBarriers() {
	teamSize := make(map[int32]int) // rank -> location count
	for i := 0; i < c.st.NumLocs(); i++ {
		teamSize[int32(c.st.Loc(i).Rank)]++
	}
	for _, k := range sortedKeys2(c.bars) {
		rank, seq := k[0], k[1]
		parts := c.bars[k]
		want := int(parts[0].team)
		for _, p := range parts[1:] {
			if got := int(p.team); got != want {
				fp := parts[0].pos
				c.violate(KindBarrier, p.pos, &fp,
					"team size %d disagrees with %d for barrier seq %d", got, want, seq)
			}
		}
		if want > teamSize[rank] {
			want = teamSize[rank] // a truncated trace cannot have more locations than recorded
		}
		if len(parts) != want && !(c.opt.Partial && len(parts) < want) {
			c.violate(KindBarrier, parts[0].pos, nil,
				"%d of %d threads reached barrier seq %d on rank %d", len(parts), want, seq, rank)
		}
		c.allToAll(parts)
	}
}

// checkForkJoin verifies strict fork/join alternation with matching
// sequence numbers per rank and emits the fork and join edges by
// consuming each worker's precomputed top-level region segments (a
// worker only has events inside parallel regions, so its next
// unclaimed segment belongs to the next fork).
func (c *checker) checkForkJoin() {
	ranks := make([]int32, 0, len(c.forks))
	seen := make(map[int32]bool)
	for r := range c.forks {
		ranks = append(ranks, r)
		seen[r] = true
	}
	for r := range c.joins {
		if !seen[r] {
			ranks = append(ranks, r)
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	segIdx := make(map[int]int)
	for _, rank := range ranks {
		forks, joins := c.forks[rank], c.joins[rank]
		// Alternation and sequence checks on the master stream.
		for i, f := range forks {
			if f.seq != int32(i) {
				c.violate(KindForkJoin, f.pos, nil,
					"fork seq %d observed where seq %d was expected", f.seq, i)
			}
		}
		for i, j := range joins {
			if j.seq != int32(i) {
				c.violate(KindForkJoin, j.pos, nil,
					"join seq %d observed where seq %d was expected", j.seq, i)
			}
		}
		switch {
		case len(joins) > len(forks):
			j := joins[len(forks)]
			c.violate(KindForkJoin, j.pos, nil,
				"join without a preceding fork (%d joins, %d forks)", len(joins), len(forks))
		case len(forks) > len(joins) && !c.opt.Partial:
			f := forks[len(joins)]
			c.violate(KindForkJoin, f.pos, nil,
				"fork never joined (%d forks, %d joins)", len(forks), len(joins))
		}
		for i := 0; i < len(forks) && i < len(joins); i++ {
			if forks[i].pos.Loc == joins[i].pos.Loc && joins[i].pos.Index < forks[i].pos.Index {
				fp := forks[i].pos
				c.violate(KindForkJoin, joins[i].pos, &fp,
					"join seq %d precedes its fork in the master stream", i)
			}
		}
		// Edges, processing forks in sequence order.
		for i, f := range forks {
			for li := 0; li < c.st.NumLocs(); li++ {
				l := c.st.Loc(li)
				if int32(l.Rank) != rank || l.Thread == 0 {
					continue
				}
				if segIdx[li] < len(c.segs[li]) {
					c.edges = append(c.edges, edgeRec{from: f.pos, to: c.segs[li][segIdx[li]].start})
					segIdx[li]++
				}
			}
			if i < len(joins) {
				j := joins[i]
				for li := 0; li < c.st.NumLocs(); li++ {
					l := c.st.Loc(li)
					if int32(l.Rank) != rank || l.Thread == 0 {
						continue
					}
					if n := segIdx[li]; n > 0 {
						c.edges = append(c.edges, edgeRec{from: c.segs[li][n-1].end, to: j.pos})
					}
				}
			}
		}
	}
}

// checkEdges verifies the Lamport clock condition (and the piggyback
// gain) on every reconstructed synchronisation edge of a logical trace.
func (c *checker) checkEdges() {
	if !c.rep.Logical {
		return
	}
	for _, e := range c.edges {
		from, to := e.from.Time, e.to.Time
		switch {
		case to <= from:
			fp := e.from
			c.violate(KindClockCondition, e.to, &fp,
				"edge target stamp %d does not exceed source stamp %d", to, from)
		case to == from+1:
			fp := e.from
			c.violate(KindPiggyback, e.to, &fp,
				"synchronisation gained only one tick (%d -> %d); piggyback apparently not folded in", from, to)
		}
	}
}

// vectorAudit computes full vector clocks from the reconstructed edges
// and checks the clock condition transitively on sampled event pairs —
// the belt-and-braces pass that would catch an edge set too weak to
// imply the full happens-before relation.  It is the one pass that
// needs the whole trace; below MaxVectorCells it materializes the
// stream (Verify hands the trace over directly, costing nothing).
func (c *checker) vectorAudit() {
	if c.opt.Partial {
		return // the transitive audit needs the complete trace
	}
	if c.rep.Events*c.st.NumLocs() > c.opt.MaxVectorCells {
		return
	}
	tr := c.mat
	if tr == nil {
		if len(c.rep.ReadErrors) > 0 {
			return // the damaged stream cannot materialize either
		}
		var err error
		tr, err = c.st.Materialize()
		if err != nil {
			c.rep.ReadErrors = append(c.rep.ReadErrors, fmt.Sprintf("vector audit: %v", err))
			return
		}
	}
	edges := make([]vclock.Edge, len(c.edges))
	for i, e := range c.edges {
		edges[i] = vclock.Edge{
			From: vclock.EventRef{Loc: e.from.Loc, Index: e.from.Index},
			To:   vclock.EventRef{Loc: e.to.Loc, Index: e.to.Index},
		}
	}
	clocks, err := vclock.ComputeFromEdges(tr, edges)
	if err != nil {
		c.violate(KindCycle, EventPos{Loc: -1, Index: -1}, nil,
			"vector-clock replay failed: %v", err)
		return
	}
	if !c.rep.Logical {
		return
	}
	ctx := regionContexts(tr)
	samples := make([][]int, len(tr.Locs))
	for li, l := range tr.Locs {
		n := len(l.Events)
		if n == 0 {
			continue
		}
		k := c.opt.SamplesPerLoc
		if k > n {
			k = n
		}
		step := 1
		if k > 1 {
			step = k - 1
		}
		for i := 0; i < k; i++ {
			samples[li] = append(samples[li], i*(n-1)/step)
		}
	}
	for la := range tr.Locs {
		for lb := range tr.Locs {
			if la == lb {
				continue
			}
			for _, ia := range samples[la] {
				for _, ib := range samples[lb] {
					a := vclock.EventRef{Loc: la, Index: ia}
					b := vclock.EventRef{Loc: lb, Index: ib}
					c.rep.SampledPairs++
					if clocks.HappensBefore(a, b) {
						ta := tr.Locs[la].Events[ia].Time
						tb := tr.Locs[lb].Events[ib].Time
						if ta >= tb {
							pb := posIn(tr, ctx, la, ia)
							c.violate(KindClockCondition, posIn(tr, ctx, lb, ib), &pb,
								"transitively ordered pair has stamps %d -> %d", ta, tb)
						}
					}
				}
			}
		}
	}
}

// regionContexts rebuilds the innermost-enclosing-region map of a
// materialized trace (the audit needs positions of arbitrary sampled
// events; everything else captured positions during the scan).
func regionContexts(tr *trace.Trace) [][]trace.RegionID {
	out := make([][]trace.RegionID, len(tr.Locs))
	for li, l := range tr.Locs {
		out[li] = make([]trace.RegionID, len(l.Events))
		var stack []int
		for ei, e := range l.Events {
			if len(stack) > 0 {
				out[li][ei] = l.Events[stack[len(stack)-1]].Region
			} else {
				out[li][ei] = -1
			}
			switch e.Kind {
			case trace.EvEnter:
				stack = append(stack, ei)
			case trace.EvExit:
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			}
		}
	}
	return out
}

// posIn builds the EventPos of one record of a materialized trace.
func posIn(tr *trace.Trace, ctx [][]trace.RegionID, loc, idx int) EventPos {
	l := tr.Locs[loc]
	e := l.Events[idx]
	p := EventPos{
		Loc: loc, Index: idx, Rank: l.Rank, Thread: l.Thread,
		Kind: e.Kind.String(), Time: e.Time,
	}
	if reg := ctx[loc][idx]; reg >= 0 && int(reg) < len(tr.Regions) {
		p.Region = tr.Regions[reg].Name
	}
	return p
}

func sortedKeys2(m map[[2]int32][]collPart) [][2]int32 {
	keys := make([][2]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
