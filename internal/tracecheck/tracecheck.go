// Package tracecheck is an offline static-analysis pass over recorded
// traces: it reconstructs the true happens-before relation from matched
// sends/receives, collectives, OpenMP barriers and fork/join events —
// the two-phase vector-clock approach of Sulzmann & Stadtmüller
// (arXiv:1807.03585) applied to LTRC traces — and verifies a battery of
// structural invariants against it.
//
// The paper's whole argument rests on logical timestamps satisfying
// Lamport's clock condition (e → f ⇒ ts(e) < ts(f)) so that Scalasca's
// replay sees causally consistent traces.  tracecheck turns that
// assumption into a checked invariant: every violation is reported as a
// structured record naming the kind, the ranks and regions involved, the
// event indices and the clock values, so a broken clock mode (or a
// corrupted trace) points at the exact offending records.
//
// Checked invariants, per clock mode:
//
//   - clock condition: for every synchronisation edge a → b of a logical
//     trace, ts(a) < ts(b); additionally, sampled causally ordered pairs
//     from the full vector-clock relation must satisfy it transitively.
//   - per-location monotonicity: logical stamps strictly increase along
//     each location's stream; physical (tsc) stamps never decrease.
//   - message matching: every receive has a FIFO-matching send on its
//     (src, dst, tag) channel, and no send is left unconsumed.
//   - collective consistency: each rank observes a communicator's
//     instances in sequence order 0,1,2,…; every instance is joined by
//     the communicator's full membership, exactly once per member, under
//     the same operation name.
//   - barrier consistency: every OpenMP barrier instance is reached by
//     the full team, in per-thread sequence order.
//   - fork/join nesting: forks and joins appear on master threads only,
//     strictly alternating with matching sequence numbers.
//   - piggyback sync: on a logical trace, a synchronisation edge must
//     advance the receiver past the sender's stamp by at least two ticks
//     (fold pb+1, then stamp); an edge that gains exactly one tick means
//     the piggyback was dropped even though the clock condition happens
//     to hold.
//   - region balance: Enter/Exit events nest properly on every location.
package tracecheck

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindClockCondition  Kind = "clock-condition"
	KindMonotonic       Kind = "nonmonotonic-timestamp"
	KindUnmatchedRecv   Kind = "unmatched-recv"
	KindOrphanSend      Kind = "orphan-send"
	KindCollOrder       Kind = "collective-order"
	KindCollParticipant Kind = "collective-participants"
	KindBarrier         Kind = "barrier-mismatch"
	KindForkJoin        Kind = "fork-join"
	KindUnbalanced      Kind = "unbalanced-region"
	KindPiggyback       Kind = "piggyback-sync"
	KindCycle           Kind = "causality-cycle"
)

// EventPos pinpoints one event record with enough context to find it in
// a trace dump: location index, rank/thread, event index, the record
// kind, the innermost enclosing region and the recorded clock value.
type EventPos struct {
	Loc    int    `json:"loc"`
	Index  int    `json:"index"`
	Rank   int    `json:"rank"`
	Thread int    `json:"thread"`
	Kind   string `json:"kind"`
	Region string `json:"region,omitempty"`
	Time   uint64 `json:"time"`
}

func (p EventPos) String() string {
	s := fmt.Sprintf("rank %d thread %d event %d %s t=%d", p.Rank, p.Thread, p.Index, p.Kind, p.Time)
	if p.Region != "" {
		s += " in " + p.Region
	}
	return s
}

// Violation is one invariant breach.  Event is the primary offending
// record; Peer, when set, is the other end of the synchronisation edge
// (the matched send for a receive-side breach, and so on).
type Violation struct {
	Kind   Kind      `json:"kind"`
	Event  EventPos  `json:"event"`
	Peer   *EventPos `json:"peer,omitempty"`
	Detail string    `json:"detail"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Event)
	if v.Peer != nil {
		s += fmt.Sprintf(" <- %s", *v.Peer)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Report summarises one verification run.
type Report struct {
	Clock   string `json:"clock"`
	Logical bool   `json:"logical"` // strict logical-clock invariants applied
	Locs    int    `json:"locations"`
	Events  int    `json:"events"`
	Edges   int    `json:"edges"` // synchronisation edges reconstructed
	// SampledPairs counts the causally ordered event pairs checked
	// transitively through the vector clocks (0 when the audit was
	// skipped for size).
	SampledPairs int `json:"sampled_pairs"`
	// Counts is the total number of violations per kind, including any
	// past the per-kind recording cap.
	Counts     map[Kind]int `json:"counts,omitempty"`
	Violations []Violation  `json:"violations,omitempty"`
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Counts) == 0 }

// NumViolations returns the total violation count across kinds.
func (r *Report) NumViolations() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Render writes a human-readable summary followed by up to limit
// violations (0 = all recorded).
func (r *Report) Render(w io.Writer, limit int) {
	verdict := "OK"
	if !r.OK() {
		verdict = fmt.Sprintf("%d violations", r.NumViolations())
	}
	mode := "physical"
	if r.Logical {
		mode = "logical"
	}
	fmt.Fprintf(w, "tracecheck %s (%s): %d locations, %d events, %d sync edges, %d sampled pairs — %s\n",
		r.Clock, mode, r.Locs, r.Events, r.Edges, r.SampledPairs, verdict)
	kinds := make([]Kind, 0, len(r.Counts))
	for k := range r.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-24s %d\n", k, r.Counts[k])
	}
	n := len(r.Violations)
	if limit > 0 && n > limit {
		n = limit
	}
	for _, v := range r.Violations[:n] {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if n < len(r.Violations) {
		fmt.Fprintf(w, "  ... %d more recorded\n", len(r.Violations)-n)
	}
}

// Options tunes a verification run.  The zero value is the default.
type Options struct {
	// MaxPerKind caps the violations recorded per kind; the totals in
	// Report.Counts keep counting past it.  0 means 100.
	MaxPerKind int
	// MaxVectorCells bounds the vector-clock audit: when events ×
	// locations exceeds it the transitive sampling pass is skipped
	// (edge-wise and monotonicity checks still imply the clock
	// condition).  0 means 50 million cells.
	MaxVectorCells int
	// SamplesPerLoc is the number of evenly spaced events sampled per
	// location for the transitive clock-condition audit.  0 means 4.
	SamplesPerLoc int
}

func (o Options) fill() Options {
	if o.MaxPerKind == 0 {
		o.MaxPerKind = 100
	}
	if o.MaxVectorCells == 0 {
		o.MaxVectorCells = 50 << 20
	}
	if o.SamplesPerLoc == 0 {
		o.SamplesPerLoc = 4
	}
	return o
}

// Logical reports whether a clock name denotes a logical (Lamport-style,
// piggyback-synchronised) mode, for which the strict invariants apply.
func Logical(clock string) bool { return strings.HasPrefix(clock, "lt_") }

// Verify runs every invariant check against the trace and returns the
// report.  It never fails: structural problems (unmatched receives,
// broken nesting, causality cycles) become violations, so a partially
// corrupted trace still yields a maximally informative report.
func Verify(tr *trace.Trace, opt Options) *Report {
	opt = opt.fill()
	c := &checker{
		tr:  tr,
		opt: opt,
		rep: &Report{
			Clock:   tr.Clock,
			Logical: Logical(tr.Clock),
			Locs:    len(tr.Locs),
			Events:  tr.NumEvents(),
			Counts:  make(map[Kind]int),
		},
	}
	c.scan()
	c.matchMessages()
	c.checkCollectives()
	c.checkBarriers()
	c.checkForkJoin()
	c.rep.Edges = len(c.edges)
	c.checkEdges()
	c.vectorAudit()
	sort.SliceStable(c.rep.Violations, func(i, j int) bool {
		a, b := c.rep.Violations[i], c.rep.Violations[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Event.Loc != b.Event.Loc {
			return a.Event.Loc < b.Event.Loc
		}
		return a.Event.Index < b.Event.Index
	})
	if len(c.rep.Counts) == 0 {
		c.rep.Counts = nil
	}
	return c.rep
}

type ref struct{ loc, idx int }

type chanKey struct{ src, dst, tag int32 }

// collPart is one location's participation in a collective, barrier,
// fork or join instance.
type collPart struct {
	loc   int
	idx   int // the Coll/Barrier/Fork/Join record
	enter int // enclosing Enter (edge source for collectives)
	name  string
}

type checker struct {
	tr  *trace.Trace
	opt Options
	rep *Report

	// region[li][ei] is the innermost enclosing region at event ei, or
	// -1 outside any region.
	region [][]trace.RegionID

	sends map[chanKey][]ref
	colls map[[2]int32][]collPart // (comm, seq)
	bars  map[[2]int32][]collPart // (rank, seq)
	forks map[int32][]collPart    // rank -> forks in stream order
	joins map[int32][]collPart    // rank -> joins in stream order

	edges []vclock.Edge
}

// violate records a violation, honouring the per-kind cap.
func (c *checker) violate(k Kind, ev EventPos, peer *EventPos, format string, args ...any) {
	c.rep.Counts[k]++
	if c.rep.Counts[k] > c.opt.MaxPerKind {
		return
	}
	c.rep.Violations = append(c.rep.Violations, Violation{
		Kind: k, Event: ev, Peer: peer, Detail: fmt.Sprintf(format, args...),
	})
}

// pos builds the EventPos of one record.
func (c *checker) pos(loc, idx int) EventPos {
	l := c.tr.Locs[loc]
	e := l.Events[idx]
	p := EventPos{
		Loc: loc, Index: idx, Rank: l.Rank, Thread: l.Thread,
		Kind: e.Kind.String(), Time: e.Time,
	}
	if reg := c.region[loc][idx]; reg >= 0 && int(reg) < len(c.tr.Regions) {
		p.Region = c.tr.Regions[reg].Name
	}
	return p
}

func (c *checker) posPtr(loc, idx int) *EventPos {
	p := c.pos(loc, idx)
	return &p
}

// scan performs the per-location pass: region nesting, timestamp
// monotonicity, and collection of every synchronisation record.
func (c *checker) scan() {
	c.region = make([][]trace.RegionID, len(c.tr.Locs))
	c.sends = make(map[chanKey][]ref)
	c.colls = make(map[[2]int32][]collPart)
	c.bars = make(map[[2]int32][]collPart)
	c.forks = make(map[int32][]collPart)
	c.joins = make(map[int32][]collPart)
	for li, l := range c.tr.Locs {
		c.region[li] = make([]trace.RegionID, len(l.Events))
		var stack []int
		for ei, e := range l.Events {
			if len(stack) > 0 {
				c.region[li][ei] = l.Events[stack[len(stack)-1]].Region
			} else {
				c.region[li][ei] = -1
			}
			if ei > 0 {
				prev := l.Events[ei-1].Time
				if c.rep.Logical && e.Time <= prev {
					c.violate(KindMonotonic, c.pos(li, ei), c.posPtr(li, ei-1),
						"logical stamp %d does not exceed predecessor %d", e.Time, prev)
				} else if !c.rep.Logical && e.Time < prev {
					c.violate(KindMonotonic, c.pos(li, ei), c.posPtr(li, ei-1),
						"stamp %d runs backwards from %d", e.Time, prev)
				}
			}
			switch e.Kind {
			case trace.EvEnter:
				stack = append(stack, ei)
			case trace.EvExit:
				if len(stack) == 0 {
					c.violate(KindUnbalanced, c.pos(li, ei), nil, "exit without matching enter")
					continue
				}
				stack = stack[:len(stack)-1]
			case trace.EvSend:
				k := chanKey{int32(l.Rank), e.A, e.B}
				c.sends[k] = append(c.sends[k], ref{li, ei})
			case trace.EvCollEnd:
				enter := ei
				if len(stack) > 0 {
					enter = stack[len(stack)-1]
				}
				part := collPart{loc: li, idx: ei, enter: enter, name: c.regionName(li, ei)}
				c.colls[[2]int32{e.A, e.B}] = append(c.colls[[2]int32{e.A, e.B}], part)
			case trace.EvBarrier:
				part := collPart{loc: li, idx: ei, enter: ei, name: c.regionName(li, ei)}
				c.bars[[2]int32{int32(l.Rank), e.B}] = append(c.bars[[2]int32{int32(l.Rank), e.B}], part)
			case trace.EvFork:
				if l.Thread != 0 {
					c.violate(KindForkJoin, c.pos(li, ei), nil, "fork recorded on worker thread")
				}
				c.forks[int32(l.Rank)] = append(c.forks[int32(l.Rank)], collPart{loc: li, idx: ei})
			case trace.EvJoin:
				if l.Thread != 0 {
					c.violate(KindForkJoin, c.pos(li, ei), nil, "join recorded on worker thread")
				}
				c.joins[int32(l.Rank)] = append(c.joins[int32(l.Rank)], collPart{loc: li, idx: ei})
			}
		}
		if len(stack) > 0 {
			c.violate(KindUnbalanced, c.pos(li, stack[len(stack)-1]), nil,
				"%d region(s) never exited before end of stream", len(stack))
		}
	}
}

func (c *checker) regionName(li, ei int) string {
	if reg := c.region[li][ei]; reg >= 0 && int(reg) < len(c.tr.Regions) {
		return c.tr.Regions[reg].Name
	}
	return ""
}

// matchMessages pairs receives with sends FIFO per (src, dst, tag)
// channel, emitting one edge per matched pair, one unmatched-recv
// violation per receive that has no send, and one orphan-send violation
// per send never consumed (the signature of a dropped receive).
func (c *checker) matchMessages() {
	pending := make(map[chanKey][]ref, len(c.sends))
	for k, v := range c.sends {
		pending[k] = v
	}
	for li, l := range c.tr.Locs {
		for ei, e := range l.Events {
			if e.Kind != trace.EvRecv {
				continue
			}
			k := chanKey{e.A, int32(l.Rank), e.B}
			q := pending[k]
			if len(q) == 0 {
				c.violate(KindUnmatchedRecv, c.pos(li, ei), nil,
					"no matching send on channel src=%d dst=%d tag=%d", e.A, l.Rank, e.B)
				continue
			}
			c.edges = append(c.edges, vclock.Edge{
				From: vclock.EventRef{Loc: q[0].loc, Index: q[0].idx},
				To:   vclock.EventRef{Loc: li, Index: ei},
			})
			pending[k] = q[1:]
		}
	}
	keys := make([]chanKey, 0, len(pending))
	for k := range pending {
		if len(pending[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for _, k := range keys {
		for _, s := range pending[k] {
			c.violate(KindOrphanSend, c.pos(s.loc, s.idx), nil,
				"send to rank %d tag %d never received (dropped receive?)", k.dst, k.tag)
		}
	}
}

// checkCollectives verifies per-location sequence ordering, full and
// exactly-once participation, and operation-name agreement for every
// collective instance, then emits the all-to-all release edges.
func (c *checker) checkCollectives() {
	keys := sortedKeys2(c.colls)
	// Communicator membership: every location that ever participates.
	members := make(map[int32]map[int]bool)
	perLocSeqs := make(map[int32]map[int][]int32) // comm -> loc -> seqs in stream order
	for _, k := range keys {
		comm := k[0]
		if members[comm] == nil {
			members[comm] = make(map[int]bool)
			perLocSeqs[comm] = make(map[int][]int32)
		}
		for _, p := range c.colls[k] {
			members[comm][p.loc] = true
		}
	}
	// Stream-order seq observation per (comm, loc): re-scan events so
	// order reflects the location's stream, not the grouping.
	for li, l := range c.tr.Locs {
		for _, e := range l.Events {
			if e.Kind == trace.EvCollEnd {
				perLocSeqs[e.A][li] = append(perLocSeqs[e.A][li], e.B)
			}
		}
	}
	comms := make([]int32, 0, len(members))
	for comm := range members {
		comms = append(comms, comm)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	for _, comm := range comms {
		locs := sortedInts(members[comm])
		for _, li := range locs {
			seqs := perLocSeqs[comm][li]
			for i, s := range seqs {
				if int32(i) != s {
					pos := c.findColl(li, comm, s)
					c.violate(KindCollOrder, pos, nil,
						"rank %d observes comm %d instance seq %d at position %d (expected seq %d)",
						c.tr.Locs[li].Rank, comm, s, i, i)
					break
				}
			}
		}
	}
	for _, k := range keys {
		comm, seq := k[0], k[1]
		parts := c.colls[k]
		seen := make(map[int]int)
		for _, p := range parts {
			seen[p.loc]++
		}
		first := parts[0]
		for _, li := range sortedInts(members[comm]) {
			switch n := seen[li]; {
			case n == 0:
				c.violate(KindCollParticipant, c.pos(first.loc, first.idx), nil,
					"rank %d missing from comm %d collective instance seq %d",
					c.tr.Locs[li].Rank, comm, seq)
			case n > 1:
				c.violate(KindCollParticipant, c.pos(first.loc, first.idx), nil,
					"rank %d participates %d times in comm %d instance seq %d",
					c.tr.Locs[li].Rank, n, comm, seq)
			}
		}
		for _, p := range parts[1:] {
			if p.name != first.name {
				c.violate(KindCollParticipant, c.pos(p.loc, p.idx), c.posPtr(first.loc, first.idx),
					"operation %q does not match %q on comm %d instance seq %d",
					p.name, first.name, comm, seq)
			}
		}
		c.allToAll(parts)
	}
}

// findColl locates the CollEnd record of (comm, seq) on a location for
// violation reporting.
func (c *checker) findColl(li int, comm, seq int32) EventPos {
	for ei, e := range c.tr.Locs[li].Events {
		if e.Kind == trace.EvCollEnd && e.A == comm && e.B == seq {
			return c.pos(li, ei)
		}
	}
	return EventPos{Loc: li, Rank: c.tr.Locs[li].Rank, Thread: c.tr.Locs[li].Thread}
}

// allToAll emits the release edges of one collective or barrier
// instance: every participant's exit happens after every participant's
// contribution.
func (c *checker) allToAll(parts []collPart) {
	for _, a := range parts {
		for _, b := range parts {
			if a.loc == b.loc {
				continue
			}
			c.edges = append(c.edges, vclock.Edge{
				From: vclock.EventRef{Loc: a.loc, Index: a.enter},
				To:   vclock.EventRef{Loc: b.loc, Index: exitAfter(c.tr.Locs[b.loc].Events, b.idx)},
			})
		}
	}
}

// checkBarriers verifies that each OpenMP barrier instance is reached by
// the full team in per-thread sequence order, then emits its edges.
func (c *checker) checkBarriers() {
	// Per-location barrier sequence order.
	for li, l := range c.tr.Locs {
		next := int32(0)
		for ei, e := range l.Events {
			if e.Kind != trace.EvBarrier {
				continue
			}
			if e.B != next {
				c.violate(KindBarrier, c.pos(li, ei), nil,
					"barrier seq %d observed where seq %d was expected", e.B, next)
				next = e.B + 1
				continue
			}
			next++
		}
	}
	teamSize := make(map[int32]int) // rank -> location count
	for _, l := range c.tr.Locs {
		teamSize[int32(l.Rank)]++
	}
	for _, k := range sortedKeys2(c.bars) {
		rank, seq := k[0], k[1]
		parts := c.bars[k]
		want := int(c.tr.Locs[parts[0].loc].Events[parts[0].idx].A)
		for _, p := range parts[1:] {
			if got := int(c.tr.Locs[p.loc].Events[p.idx].A); got != want {
				c.violate(KindBarrier, c.pos(p.loc, p.idx), c.posPtr(parts[0].loc, parts[0].idx),
					"team size %d disagrees with %d for barrier seq %d", got, want, seq)
			}
		}
		if want > teamSize[rank] {
			want = teamSize[rank] // a truncated trace cannot have more locations than recorded
		}
		if len(parts) != want {
			c.violate(KindBarrier, c.pos(parts[0].loc, parts[0].idx), nil,
				"%d of %d threads reached barrier seq %d on rank %d", len(parts), want, seq, rank)
		}
		c.allToAll(parts)
	}
}

// checkForkJoin verifies strict fork/join alternation with matching
// sequence numbers per rank and emits the fork and join edges using the
// worker-cursor reconstruction (workers only have events inside parallel
// regions, so their next unclaimed region belongs to the next fork).
func (c *checker) checkForkJoin() {
	ranks := make([]int32, 0, len(c.forks))
	seen := make(map[int32]bool)
	for r := range c.forks {
		ranks = append(ranks, r)
		seen[r] = true
	}
	for r := range c.joins {
		if !seen[r] {
			ranks = append(ranks, r)
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	workerCursor := make(map[int]int)
	for _, rank := range ranks {
		forks, joins := c.forks[rank], c.joins[rank]
		// Alternation and sequence checks on the master stream.
		for i, f := range forks {
			if seq := c.tr.Locs[f.loc].Events[f.idx].B; int32(i) != seq {
				c.violate(KindForkJoin, c.pos(f.loc, f.idx), nil,
					"fork seq %d observed where seq %d was expected", seq, i)
			}
		}
		for i, j := range joins {
			if seq := c.tr.Locs[j.loc].Events[j.idx].B; int32(i) != seq {
				c.violate(KindForkJoin, c.pos(j.loc, j.idx), nil,
					"join seq %d observed where seq %d was expected", seq, i)
			}
		}
		switch {
		case len(joins) > len(forks):
			j := joins[len(forks)]
			c.violate(KindForkJoin, c.pos(j.loc, j.idx), nil,
				"join without a preceding fork (%d joins, %d forks)", len(joins), len(forks))
		case len(forks) > len(joins):
			f := forks[len(joins)]
			c.violate(KindForkJoin, c.pos(f.loc, f.idx), nil,
				"fork never joined (%d forks, %d joins)", len(forks), len(joins))
		}
		for i := 0; i < len(forks) && i < len(joins); i++ {
			if forks[i].loc == joins[i].loc && joins[i].idx < forks[i].idx {
				c.violate(KindForkJoin, c.pos(joins[i].loc, joins[i].idx), c.posPtr(forks[i].loc, forks[i].idx),
					"join seq %d precedes its fork in the master stream", i)
			}
		}
		// Edges, processing forks in sequence order.
		for i, f := range forks {
			for li, l := range c.tr.Locs {
				if int32(l.Rank) != rank || l.Thread == 0 {
					continue
				}
				cur := workerCursor[li]
				if cur < len(l.Events) {
					c.edges = append(c.edges, vclock.Edge{
						From: vclock.EventRef{Loc: f.loc, Index: f.idx},
						To:   vclock.EventRef{Loc: li, Index: cur},
					})
					workerCursor[li] = regionEnd(l.Events, cur) + 1
				}
			}
			if i < len(joins) {
				j := joins[i]
				for li, l := range c.tr.Locs {
					if int32(l.Rank) != rank || l.Thread == 0 {
						continue
					}
					if end := workerCursor[li] - 1; end >= 0 && end < len(l.Events) {
						c.edges = append(c.edges, vclock.Edge{
							From: vclock.EventRef{Loc: li, Index: end},
							To:   vclock.EventRef{Loc: j.loc, Index: j.idx},
						})
					}
				}
			}
		}
	}
}

// checkEdges verifies the Lamport clock condition (and the piggyback
// gain) on every reconstructed synchronisation edge of a logical trace.
func (c *checker) checkEdges() {
	if !c.rep.Logical {
		return
	}
	for _, e := range c.edges {
		from := c.tr.Locs[e.From.Loc].Events[e.From.Index].Time
		to := c.tr.Locs[e.To.Loc].Events[e.To.Index].Time
		switch {
		case to <= from:
			c.violate(KindClockCondition, c.pos(e.To.Loc, e.To.Index), c.posPtr(e.From.Loc, e.From.Index),
				"edge target stamp %d does not exceed source stamp %d", to, from)
		case to == from+1:
			c.violate(KindPiggyback, c.pos(e.To.Loc, e.To.Index), c.posPtr(e.From.Loc, e.From.Index),
				"synchronisation gained only one tick (%d -> %d); piggyback apparently not folded in", from, to)
		}
	}
}

// vectorAudit computes full vector clocks from the reconstructed edges
// and checks the clock condition transitively on sampled event pairs —
// the belt-and-braces pass that would catch an edge set too weak to
// imply the full happens-before relation.
func (c *checker) vectorAudit() {
	if c.rep.Events*len(c.tr.Locs) > c.opt.MaxVectorCells {
		return
	}
	clocks, err := vclock.ComputeFromEdges(c.tr, c.edges)
	if err != nil {
		c.violate(KindCycle, EventPos{Loc: -1, Index: -1}, nil,
			"vector-clock replay failed: %v", err)
		return
	}
	if !c.rep.Logical {
		return
	}
	samples := make([][]int, len(c.tr.Locs))
	for li, l := range c.tr.Locs {
		n := len(l.Events)
		if n == 0 {
			continue
		}
		k := c.opt.SamplesPerLoc
		if k > n {
			k = n
		}
		step := 1
		if k > 1 {
			step = k - 1
		}
		for i := 0; i < k; i++ {
			samples[li] = append(samples[li], i*(n-1)/step)
		}
	}
	for la := range c.tr.Locs {
		for lb := range c.tr.Locs {
			if la == lb {
				continue
			}
			for _, ia := range samples[la] {
				for _, ib := range samples[lb] {
					a := vclock.EventRef{Loc: la, Index: ia}
					b := vclock.EventRef{Loc: lb, Index: ib}
					c.rep.SampledPairs++
					if clocks.HappensBefore(a, b) {
						ta := c.tr.Locs[la].Events[ia].Time
						tb := c.tr.Locs[lb].Events[ib].Time
						if ta >= tb {
							c.violate(KindClockCondition, c.pos(lb, ib), c.posPtr(la, ia),
								"transitively ordered pair has stamps %d -> %d", ta, tb)
						}
					}
				}
			}
		}
	}
}

// exitAfter finds the index of the Exit event closing the region that
// contains index i (mirrors vclock's edge semantics).
func exitAfter(events []trace.Event, i int) int {
	depth := 0
	for j := i + 1; j < len(events); j++ {
		switch events[j].Kind {
		case trace.EvEnter:
			depth++
		case trace.EvExit:
			if depth == 0 {
				return j
			}
			depth--
		}
	}
	return len(events) - 1
}

// regionEnd returns the index of the Exit balancing the Enter at start.
func regionEnd(events []trace.Event, start int) int {
	depth := 0
	for j := start; j < len(events); j++ {
		switch events[j].Kind {
		case trace.EvEnter:
			depth++
		case trace.EvExit:
			depth--
			if depth == 0 {
				return j
			}
		}
	}
	return len(events) - 1
}

func sortedKeys2(m map[[2]int32][]collPart) [][2]int32 {
	keys := make([][2]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
