package tracecheck_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/tracecheck"
)

// TestCleanMiniApps asserts the paper's core structural claim: every
// logical effort model emits traces satisfying the Lamport clock
// condition (and every other checked invariant) on all three mini-apps;
// tsc traces pass the structural checks (matching, ordering, nesting)
// with the clock condition not asserted.
func TestCleanMiniApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick simulations")
	}
	specs := []string{"MiniFE-1", "LULESH-2", "TeaLeaf-2"}
	modes := append([]core.Mode{}, core.LogicalModes()...)
	modes = append(modes, core.ModeTSC)
	np := noise.Params{}
	for _, name := range specs {
		spec, err := experiment.SpecByName(name, experiment.Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				res, err := experiment.Run(spec, mode, 1, np, false)
				if err != nil {
					t.Fatal(err)
				}
				r := tracecheck.Verify(res.Trace, tracecheck.Options{})
				if !r.OK() {
					var sb strings.Builder
					r.Render(&sb, 10)
					t.Fatalf("invariant violations:\n%s", sb.String())
				}
				if wantLogical := mode != core.ModeTSC; r.Logical != wantLogical {
					t.Fatalf("mode %s classified logical=%v", mode, r.Logical)
				}
				if r.Edges == 0 {
					t.Fatalf("no synchronisation edges reconstructed for %s", name)
				}
			})
		}
	}
}

// TestCleanPatterns runs the same invariant suite over every
// communication-pattern workload (the propagation-study media) in every
// timer mode: the patterns exercise message shapes the paper apps do not
// (Sendrecv rings, bounded-window backpressure, AnyTag task farms), and
// the PDES work will lean on these traces as oracles.
func TestCleanPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick simulations")
	}
	modes := append([]core.Mode{}, core.LogicalModes()...)
	modes = append(modes, core.ModeTSC)
	np := noise.Params{}
	for _, spec := range experiment.PatternSpecs(experiment.Options{Quick: true}) {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, mode), func(t *testing.T) {
				res, err := experiment.Run(spec, mode, 1, np, false)
				if err != nil {
					t.Fatal(err)
				}
				r := tracecheck.Verify(res.Trace, tracecheck.Options{})
				if !r.OK() {
					var sb strings.Builder
					r.Render(&sb, 10)
					t.Fatalf("invariant violations:\n%s", sb.String())
				}
				if r.Edges == 0 {
					t.Fatalf("no synchronisation edges reconstructed for %s", spec.Name)
				}
			})
		}
	}
}

// TestCleanParallelKernel repeats the invariant suite over traces the
// conservative parallel kernel produced.  The differential battery in
// internal/vtime already proves those traces byte-identical to the
// sequential ones; this is the independent, first-principles check — if
// the staging/commit machinery ever broke and the battery's oracle broke
// with it, a causality violation (a receive before its send, a clock
// regression) would still surface here.
func TestCleanParallelKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick simulations")
	}
	np := noise.Cluster()
	modes := []core.Mode{core.ModeTSC, core.ModeLt1, core.ModeHwctr}
	for _, spec := range experiment.PatternSpecs(experiment.Options{Quick: true}) {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, mode), func(t *testing.T) {
				cfg := measure.DefaultConfig(mode)
				res, err := experiment.RunWithOptions(spec, experiment.RunOptions{
					Seed: 1, Noise: np, Cfg: &cfg, KernelWorkers: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				r := tracecheck.Verify(res.Trace, tracecheck.Options{})
				if !r.OK() {
					var sb strings.Builder
					r.Render(&sb, 10)
					t.Fatalf("parallel-kernel invariant violations:\n%s", sb.String())
				}
				if r.Edges == 0 {
					t.Fatalf("no synchronisation edges reconstructed for %s", spec.Name)
				}
			})
		}
	}
}

// TestCleanWithNoise repeats the check for one hybrid configuration with
// the noise model on: noise perturbs virtual timing and therefore message
// matching order, but must never break causal consistency.
func TestCleanWithNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick simulations")
	}
	spec, err := experiment.SpecByName("MiniFE-2", experiment.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	np := noise.Cluster()
	for _, mode := range []core.Mode{core.ModeStmt, core.ModeHwctr} {
		res, err := experiment.Run(spec, mode, 3, np, false)
		if err != nil {
			t.Fatal(err)
		}
		r := tracecheck.Verify(res.Trace, tracecheck.Options{})
		if !r.OK() {
			var sb strings.Builder
			r.Render(&sb, 10)
			t.Fatalf("%s with noise: invariant violations:\n%s", mode, sb.String())
		}
	}
}
