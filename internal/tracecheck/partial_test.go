package tracecheck_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/noise"
	"repro/internal/trace"
	"repro/internal/tracecheck"
)

// TestPartialSuppressesEndDependentChecks builds the canonical live
// prefix by hand: the sender's location is fully sealed (send, exit and
// all), the receiver's stops before its Recv arrives.  Complete-trace
// verification must flag the imbalance; partial verification must stay
// silent, because the rest of the receiver's stream may still
// legitimately arrive.
func TestPartialSuppressesEndDependentChecks(t *testing.T) {
	tr := trace.New("lt_1")
	l0 := tr.AddLocation(0, 0)
	l1 := tr.AddLocation(1, 0)
	main := tr.Region("main", trace.RoleUser)
	send := tr.Region("MPI_Send", trace.RoleMPIP2P)
	tr.Append(l0, trace.Event{Kind: trace.EvEnter, Time: 0, Region: main})
	tr.Append(l0, trace.Event{Kind: trace.EvEnter, Time: 10, Region: send})
	tr.Append(l0, trace.Event{Kind: trace.EvSend, Time: 15, A: 1, B: 3, C: 8})
	tr.Append(l0, trace.Event{Kind: trace.EvExit, Time: 20, Region: send})
	tr.Append(l0, trace.Event{Kind: trace.EvExit, Time: 100, Region: main})
	// Location 1 is sealed less far along: still inside main, its
	// matching Recv not yet on disk.
	tr.Append(l1, trace.Event{Kind: trace.EvEnter, Time: 0, Region: main})

	strict := tracecheck.Verify(tr, tracecheck.Options{})
	if strict.OK() {
		t.Fatal("complete-trace verification missed the orphan send and open region")
	}
	partial := tracecheck.Verify(tr, tracecheck.Options{Partial: true})
	if !partial.OK() {
		var sb bytes.Buffer
		partial.Render(&sb, 10)
		t.Fatalf("partial verification flagged a legitimate prefix:\n%s", sb.String())
	}
	if partial.Edges != 0 {
		t.Fatalf("no matched pairs exist, yet %d edges were reconstructed", partial.Edges)
	}
}

// TestPartialCleanOnEveryLivePrefix is the prefix-closure property on a
// real workload: spill a full mini-app run through an interleaved
// chunked writer (the live-observatory layout), cut the file at
// arbitrary byte offsets, recover each sealed prefix through the tail
// reader, and require partial verification to pass on every one —
// while at least one mid-run prefix must fail the complete-trace checks
// (otherwise Partial suppresses nothing and the test is vacuous).
func TestPartialCleanOnEveryLivePrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick simulation")
	}
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.Run(spec, core.ModeStmt, 1, noise.Params{}, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	// Interleave events across locations round-robin with small chunks,
	// exactly how a live spill lands on disk.
	var buf bytes.Buffer
	cw := trace.NewChunkWriter(&buf, tr.Clock)
	cw.ChunkEvents = 128
	for _, r := range tr.Regions {
		cw.Region(r.Name, r.Role)
	}
	for _, l := range tr.Locs {
		cw.AddLocation(l.Rank, l.Thread)
	}
	for i := 0; ; i++ {
		wrote := false
		for li := range tr.Locs {
			if i < len(tr.Locs[li].Events) {
				cw.Record(li, tr.Locs[li].Events[i])
				wrote = true
			}
		}
		if !wrote {
			break
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	strictFailed := false
	for _, frac := range []int{5, 25, 50, 75, 95, 100} {
		cut := int64(len(full)) * int64(frac) / 100
		path := filepath.Join(t.TempDir(), "prefix.ltrc")
		if err := os.WriteFile(path, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		tc, err := trace.Follow(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tc.Poll(); err != nil {
			t.Fatalf("cut %d%%: %v", frac, err)
		}
		st := tc.Snapshot().Stream()
		rep := tracecheck.VerifyStream(st, tracecheck.Options{Partial: true})
		if !rep.OK() {
			var sb bytes.Buffer
			rep.Render(&sb, 10)
			t.Errorf("cut %d%%: partial verification flagged a clean prefix:\n%s", frac, sb.String())
		}
		if frac < 100 && !strictFailed {
			if !tracecheck.VerifyStream(tc.Snapshot().Stream(), tracecheck.Options{}).OK() {
				strictFailed = true
			}
		}
		tc.Close()
	}
	if !strictFailed {
		t.Error("no mid-run prefix failed the complete-trace checks; Partial suppressed nothing")
	}
}
