package perfetto_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/miniapps/minife"
	"repro/internal/obs/perfetto"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "regenerate testdata/mini.ltrc and its golden JSON")

// miniTrace runs the committed artifact's configuration: a tiny
// 2-rank x 2-thread MiniFE solve, lt_stmt clock, seed 1, noise-free —
// small enough that its Perfetto JSON stays reviewable, rich enough to
// exercise regions, flows, collectives and fork/join.
func miniTrace(t *testing.T) *trace.Trace {
	t.Helper()
	mfe := minife.Default()
	mfe.Nx, mfe.CGIters = 6, 3
	spec := experiment.Spec{
		Name: "MiniFE-mini", Ranks: 2, Threads: 2, Nodes: 1,
		App: func(r *measure.Rank) experiment.AppResult {
			res := minife.Run(r, mfe)
			return experiment.AppResult{Check: res.Residual}
		},
		Description: "perfetto golden fixture",
	}
	cfg := measure.DefaultConfig(core.ModeStmt)
	res, err := experiment.RunWithOptions(spec, experiment.RunOptions{Cfg: &cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func export(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := perfetto.Export(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenMiniTrace pins the whole export chain byte-for-byte: the
// committed mini.ltrc must equal a fresh simulation of its
// configuration (so the artifact cannot go stale behind a semantics
// change), and rendering it must equal the committed golden JSON (the
// same comparison CI's ltviz smoke performs).  Run with -update after
// an intentional change to either side.
func TestGoldenMiniTrace(t *testing.T) {
	tracePath := filepath.Join("testdata", "mini.ltrc")
	goldenPath := filepath.Join("testdata", "mini.golden.json")
	var live bytes.Buffer
	if err := miniTrace(t).Write(&live); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, live.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, live.Bytes()) {
		t.Fatalf("committed %s (%d bytes) differs from a fresh simulation (%d bytes); run with -update if the semantics change was intentional",
			tracePath, len(committed), live.Len())
	}
	// Render through the same path ltviz uses for file input: ReadFile
	// then Export with no timeline.
	tr, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	got := export(t, tr)
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("export of %s differs from %s (%d vs %d bytes); run with -update if intentional",
			tracePath, goldenPath, len(got), len(want))
	}
}

// TestExportIsValidSortedJSON checks the structural promises the golden
// cannot: the output parses, object keys come out sorted (verified by
// re-marshalling each event with encoding/json's sorted map order), and
// every flow-finish id was opened by a flow-start.
func TestExportIsValidSortedJSON(t *testing.T) {
	out := export(t, miniTrace(t))
	var doc struct {
		DisplayTimeUnit string                       `json:"displayTimeUnit"`
		TraceEvents     []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	starts := map[string]bool{}
	var finishes []string
	phCount := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph := string(ev["ph"])
		phCount[ph]++
		switch ph {
		case `"s"`:
			starts[string(ev["id"])] = true
		case `"f"`:
			finishes = append(finishes, string(ev["id"]))
		}
	}
	if phCount[`"B"`] == 0 || phCount[`"B"`] != phCount[`"E"`] {
		t.Fatalf("unbalanced duration events: %d B vs %d E", phCount[`"B"`], phCount[`"E"`])
	}
	if len(starts) == 0 || len(finishes) == 0 {
		t.Fatalf("expected flow arrows, got %d starts and %d finishes", len(starts), len(finishes))
	}
	for _, id := range finishes {
		if !starts[id] {
			t.Fatalf("flow finish id %s has no start", id)
		}
	}
}

// TestExportDeterministic: same trace in, identical bytes out.
func TestExportDeterministic(t *testing.T) {
	tr := miniTrace(t)
	if a, b := export(t, tr), export(t, tr); !bytes.Equal(a, b) {
		t.Fatal("two exports of one trace differ")
	}
}
