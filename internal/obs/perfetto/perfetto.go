// Package perfetto converts the simulator's traces into the Chrome
// trace-event JSON that Perfetto (ui.perfetto.dev) and chrome://tracing
// load directly, so a simulated run can be inspected on the same
// timeline UI used for real profiles.
//
// The mapping follows the trace-event format's process/thread model:
// each MPI rank becomes a process (pid = rank) and each of its OpenMP
// threads a thread (tid = thread).  Region enter/exit pairs become
// duration events, point-to-point messages become flow arrows from the
// send to the matching receive, logical-clock piggyback synchronisations
// and collective completions become instant events, and an optional
// obs.Timeline contributes fault-injection instants plus counter tracks
// of the fluid model's resource capacities under a synthetic "machine"
// process.
//
// Timestamps: the trace-event ts field is in microseconds.  TSC traces
// tick at core.TSCTicksPerSecond (1e9/s), so one tick renders as 1e-3
// microseconds and the Perfetto timeline is real virtual time; logical
// clock modes mint logical ticks, which are exported one tick = one
// microsecond.  Timeline annotations are recorded in virtual seconds,
// so they align exactly with the event slices only on tsc traces — on
// logical traces the two axes are incommensurable, which is precisely
// the property of logical timers the paper studies.
//
// The output is deterministic byte-for-byte: events are emitted in
// location order and record order, JSON object keys are alphabetical
// (struct fields are declared sorted; args maps are sorted by
// encoding/json), and one event per line keeps goldens diffable.
package perfetto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// MachinePID is the synthetic process id that carries the machine-level
// tracks (fault-injection instants, resource-capacity counters), far
// above any plausible rank number.
const MachinePID = 1 << 20

// event is one trace-event record.  Field declaration order is
// alphabetical by JSON key, so the rendered object keys are sorted —
// the goldens rely on it.
type event struct {
	Args map[string]any `json:"args,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   int            `json:"id,omitempty"`
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	S    string         `json:"s,omitempty"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
}

// tickMicros returns the microseconds one trace tick of the given clock
// represents on the exported timeline.
func tickMicros(clock string) float64 {
	if clock == string(core.ModeTSC) {
		return 1e6 / core.TSCTicksPerSecond
	}
	return 1 // logical ticks: one tick = one microsecond
}

// TickSeconds returns the virtual seconds one trace tick of the given
// clock represents on the exported timeline — the converter overlay
// producers (ltviz's delay-front marks) use to place tick-denominated
// analysis results onto the timeline's seconds axis.
func TickSeconds(clock string) float64 { return tickMicros(clock) / 1e6 }

// flowKey identifies one ordered point-to-point channel; matching is
// FIFO per key, the non-overtaking order MPI guarantees.
type flowKey struct {
	src, dst, tag int32
}

// matchFlows pairs every send with its receive.  Sends are numbered in
// (location, record) order starting at 1; a receive adopts the id of
// the oldest unconsumed send on its (src, dst, tag) channel.  The
// returned map is keyed by (location index, event index); unmatched
// receives are absent (rendered as plain instants).  It costs one extra
// pass over the stream (cursors are re-opened for the emission pass),
// holding only the send/receive correlation in memory.
func matchFlows(st *trace.Stream) (map[[2]int]int, error) {
	ids := make(map[[2]int]int)
	queues := make(map[flowKey][]int)
	next := 1
	for li := 0; li < st.NumLocs(); li++ {
		l := st.Loc(li)
		cur := st.Cursor(li)
		ei := 0
		for e, ok := cur.Next(); ok; e, ok = cur.Next() {
			if e.Kind == trace.EvSend {
				k := flowKey{src: int32(l.Rank), dst: e.A, tag: e.B}
				ids[[2]int{li, ei}] = next
				queues[k] = append(queues[k], next)
				next++
			}
			ei++
		}
		if err := cur.Err(); err != nil {
			return nil, fmt.Errorf("perfetto: loc %d: %w", li, err)
		}
	}
	for li := 0; li < st.NumLocs(); li++ {
		l := st.Loc(li)
		cur := st.Cursor(li)
		ei := 0
		for e, ok := cur.Next(); ok; e, ok = cur.Next() {
			if e.Kind == trace.EvRecv {
				k := flowKey{src: e.A, dst: int32(l.Rank), tag: e.B}
				if q := queues[k]; len(q) > 0 {
					ids[[2]int{li, ei}] = q[0]
					queues[k] = q[1:]
				}
			}
			ei++
		}
		if err := cur.Err(); err != nil {
			return nil, fmt.Errorf("perfetto: loc %d: %w", li, err)
		}
	}
	return ids, nil
}

// Export writes tr (and, when non-nil, the timeline's annotations) as
// trace-event JSON.  See the package comment for the mapping and the
// determinism guarantees.  It is ExportStream over the in-memory trace,
// so both paths emit identical bytes.
func Export(w io.Writer, tr *trace.Trace, tl *obs.Timeline) error {
	return ExportStream(w, trace.StreamTrace(tr), tl)
}

// ExportStream writes a trace stream as trace-event JSON.  It makes two
// passes over the stream — one to correlate message flows, one to emit —
// re-opening the per-location cursors in between, so a chunked on-disk
// trace exports holding one chunk window plus the flow-id map in memory.
func ExportStream(w io.Writer, st *trace.Stream, tl *obs.Timeline) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e event) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: name every rank process and thread, then the synthetic
	// machine process.
	for li := 0; li < st.NumLocs(); li++ {
		l := st.Loc(li)
		if l.Thread == 0 {
			if err := emit(event{
				Args: map[string]any{"name": fmt.Sprintf("rank %d", l.Rank)},
				Name: "process_name", Ph: "M", Pid: l.Rank,
			}); err != nil {
				return err
			}
		}
		if err := emit(event{
			Args: map[string]any{"name": fmt.Sprintf("thread %d", l.Thread)},
			Name: "thread_name", Ph: "M", Pid: l.Rank, Tid: l.Thread,
		}); err != nil {
			return err
		}
	}
	hasMachine := tl != nil && (len(tl.Marks()) > 0 || len(tl.Samples()) > 0)
	if hasMachine {
		if err := emit(event{
			Args: map[string]any{"name": "machine"},
			Name: "process_name", Ph: "M", Pid: MachinePID,
		}); err != nil {
			return err
		}
	}

	// Event streams, in location then record order.
	scale := tickMicros(st.Clock)
	logical := strings.HasPrefix(st.Clock, "lt_")
	flows, err := matchFlows(st)
	if err != nil {
		return err
	}
	for li := 0; li < st.NumLocs(); li++ {
		l := st.Loc(li)
		cur := st.Cursor(li)
		ei := -1
		for e, ok := cur.Next(); ok; e, ok = cur.Next() {
			ei++
			ts := float64(e.Time) * scale
			base := event{Pid: l.Rank, Tid: l.Thread, Ts: ts}
			var out event
			switch e.Kind {
			case trace.EvEnter:
				out = base
				out.Ph = "B"
				out.Name = st.Regions[e.Region].Name
				out.Cat = st.Regions[e.Region].Role.String()
			case trace.EvExit:
				out = base
				out.Ph = "E"
				out.Name = st.Regions[e.Region].Name
				out.Cat = st.Regions[e.Region].Role.String()
			case trace.EvSend:
				out = base
				out.Ph = "s"
				out.Cat = "msg"
				out.ID = flows[[2]int{li, ei}]
				out.Name = fmt.Sprintf("msg to %d tag %d", e.A, e.B)
				out.Args = map[string]any{"bytes": e.C}
			case trace.EvRecv:
				if id, ok := flows[[2]int{li, ei}]; ok {
					out = base
					out.Ph = "f"
					out.Bp = "e"
					out.Cat = "msg"
					out.ID = id
					out.Name = fmt.Sprintf("msg from %d tag %d", e.A, e.B)
				} else {
					out = base
					out.Ph = "i"
					out.S = "t"
					out.Name = fmt.Sprintf("unmatched recv from %d tag %d", e.A, e.B)
				}
				if logical {
					if err := emit(out); err != nil {
						return err
					}
					out = base
					out.Ph = "i"
					out.S = "t"
					out.Cat = "piggyback"
					out.Name = "piggyback sync"
				}
			case trace.EvCollEnd:
				out = base
				out.Ph = "i"
				out.S = "t"
				out.Cat = "mpi-coll"
				out.Name = fmt.Sprintf("collective end comm %d seq %d", e.A, e.B)
				out.Args = map[string]any{"bytes": e.C}
				if logical {
					if err := emit(out); err != nil {
						return err
					}
					out = base
					out.Ph = "i"
					out.S = "t"
					out.Cat = "piggyback"
					out.Name = "piggyback sync"
				}
			case trace.EvFork:
				out = base
				out.Ph = "i"
				out.S = "t"
				out.Cat = "omp"
				out.Name = fmt.Sprintf("fork team %d", e.A)
			case trace.EvJoin:
				out = base
				out.Ph = "i"
				out.S = "t"
				out.Cat = "omp"
				out.Name = "join"
			case trace.EvBarrier:
				out = base
				out.Ph = "i"
				out.S = "t"
				out.Cat = "omp"
				out.Name = fmt.Sprintf("barrier team %d", e.A)
			default:
				continue
			}
			if err := emit(out); err != nil {
				return err
			}
		}
		if err := cur.Err(); err != nil {
			return fmt.Errorf("perfetto: loc %d: %w", li, err)
		}
	}

	// Machine tracks from the timeline: fault instants and capacity
	// counters, both recorded in virtual seconds.
	if tl != nil {
		for _, m := range tl.Marks() {
			if err := emit(event{
				Args: map[string]any{"detail": m.Detail},
				Cat:  "fault",
				Name: m.Name, Ph: "i", Pid: MachinePID, S: "g",
				Ts: m.T * 1e6,
			}); err != nil {
				return err
			}
		}
		for _, s := range tl.Samples() {
			if err := emit(event{
				Args: map[string]any{"value": s.Value},
				Name: s.Track, Ph: "C", Pid: MachinePID,
				Ts: s.T * 1e6,
			}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
