// Package live is the run observatory: it follows a chunked trace file
// while the simulation is still writing it, re-runs the wait-state
// analysis and the invariant checker incrementally over the sealed
// prefix, and serves the results — together with the metrics registry
// and the study progress — over a small HTTP surface.
//
// Observation is strictly read-only.  The watcher opens the trace file
// for reading only, every analysis runs over an immutable snapshot of
// the sealed prefix, and nothing in this package hands a handle back to
// the simulation: a run with the observatory attached produces byte-
// identical traces, profiles and study JSON to a run without it
// (asserted by internal/experiment's identity tests).
package live

import (
	"sort"
	"sync"

	"repro/internal/cube"
	"repro/internal/scalasca"
	"repro/internal/trace"
	"repro/internal/tracecheck"
)

// Watcher tails one chunked trace file and derives analyses from its
// sealed prefix.  All methods are safe for concurrent use; each
// analysis works on an immutable snapshot, so a slow HTTP client never
// blocks the poll loop (or the writer, which the watcher never touches
// at all).
type Watcher struct {
	mu sync.Mutex
	tc *trace.TailCursor
}

// Watch opens the trace at path for following.  The file must already
// exist (its header may still be incomplete; polling tolerates that).
func Watch(path string) (*Watcher, error) {
	tc, err := trace.Follow(path)
	if err != nil {
		return nil, err
	}
	return &Watcher{tc: tc}, nil
}

// Poll ingests whatever the writer has sealed since the last call.  See
// trace.TailCursor.Poll for the torn/damage semantics.
func (w *Watcher) Poll() (newChunks int, done bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tc.Poll()
}

// Snapshot returns an immutable reader over the sealed prefix.
func (w *Watcher) Snapshot() *trace.ChunkFile {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tc.Snapshot()
}

// Stream returns a stream over the sealed prefix, for export consumers
// (perfetto, lttrace -stat).
func (w *Watcher) Stream() *trace.Stream {
	return w.Snapshot().Stream()
}

// Done reports whether the trailer has been ingested (the trace is
// complete and sealed).
func (w *Watcher) Done() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tc.Done()
}

// Close releases the underlying file.  Pending snapshots keep working
// until garbage collected only if the OS keeps the mapping; callers
// should finish analyses before closing.
func (w *Watcher) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tc.Close()
}

// Profile runs the wait-state analysis over the current sealed prefix
// and returns the profile.  Once the tail is done this is exactly the
// post-mortem scalasca.AnalyzeStream result.
func (w *Watcher) Profile() (*cube.Profile, error) {
	return scalasca.AnalyzeStreamPartial(w.Stream())
}

// waitMetrics are the wait-state metrics surfaced in a WaitSummary,
// with the paper's §V terminology.
var waitMetrics = []string{
	scalasca.MLateSender,
	scalasca.MLateReceiver,
	scalasca.MWaitNxN,
	scalasca.MWaitBarrier,
	scalasca.MBarrierWait,
	scalasca.MIdleThreads,
	scalasca.MDelayNxN,
	scalasca.MDelayLateSender,
}

// PathShare is one call path's share of a wait metric.
type PathShare struct {
	Metric  string  `json:"metric"`
	Path    string  `json:"path"`
	Percent float64 `json:"percent"`
}

// WaitSummary is the observatory's incremental wait-state and
// invariant view of a run, as served by /waitstates.  Totals are in
// ticks of the trace's clock.  The summary is monotone while the run
// progresses (events, chunks and wait totals only grow) and converges
// to the post-mortem analysis on the final poll after the trailer
// lands.
type WaitSummary struct {
	Clock  string `json:"clock"`
	Done   bool   `json:"done"`
	Events int    `json:"events"`
	Chunks int    `json:"chunks"`
	Locs   int    `json:"locations"`
	Offset int64  `json:"offset"` // sealed bytes ingested so far

	// Torn reports a transient cut at the tail (writer mid-record);
	// Damage a sticky structural error.  Both empty when clean.
	Torn   string `json:"torn,omitempty"`
	Damage string `json:"damage,omitempty"`

	// TimeTotal is the aggregated time metric; Waits the wait-state
	// totals by metric name (only non-zero metrics appear).
	TimeTotal float64            `json:"time_total"`
	Waits     map[string]float64 `json:"waits,omitempty"`
	// TopWaitPaths lists the dominant call paths per non-zero wait
	// metric, worst first.
	TopWaitPaths []PathShare `json:"top_wait_paths,omitempty"`

	// Violations counts invariant breaches by kind over the sealed
	// prefix (prefix-closed checks only until Done).
	Violations     map[string]int `json:"violations,omitempty"`
	ViolationTotal int            `json:"violation_total"`

	// AnalyzeError is set when the wait-state replay itself failed
	// (damaged trace); the structural counters above are still valid.
	AnalyzeError string `json:"analyze_error,omitempty"`
}

// WaitStates polls the tail and computes the incremental summary over
// the sealed prefix.  It never returns an error for torn or damaged
// tails — those surface inside the summary — only for I/O failures
// reaching the file.
func (w *Watcher) WaitStates() (*WaitSummary, error) {
	w.mu.Lock()
	if _, _, err := w.tc.Poll(); err != nil && w.tc.Err() == nil {
		w.mu.Unlock()
		return nil, err
	}
	s := &WaitSummary{
		Clock:  w.tc.Clock(),
		Done:   w.tc.Done(),
		Events: w.tc.Events(),
		Chunks: w.tc.NumChunks(),
		Offset: w.tc.Offset(),
	}
	if te := w.tc.Torn(); te != nil {
		s.Torn = te.Error()
	}
	if de := w.tc.Err(); de != nil {
		s.Damage = de.Error()
	}
	cf := w.tc.Snapshot()
	w.mu.Unlock()

	s.Locs = len(cf.Locs())
	summarizeStream(s, cf)
	return s, nil
}

// summarizeStream fills the analysis sections of s from the sealed
// prefix cf.  Split out so tests can drive it on a plain ChunkFile.
func summarizeStream(s *WaitSummary, cf *trace.ChunkFile) {
	prof, err := scalasca.AnalyzeStreamPartial(cf.Stream())
	if err != nil {
		s.AnalyzeError = err.Error()
	} else {
		s.TimeTotal = prof.TotalByName(scalasca.MTime)
		for _, m := range waitMetrics {
			v := prof.TotalByName(m)
			if v == 0 {
				continue
			}
			if s.Waits == nil {
				s.Waits = make(map[string]float64)
			}
			s.Waits[m] = v
			for _, ps := range prof.TopPaths(m, 3) {
				s.TopWaitPaths = append(s.TopWaitPaths, PathShare{
					Metric: m, Path: ps.Path, Percent: ps.Percent,
				})
			}
		}
		// waitMetrics order is fixed, so the slice is already grouped by
		// metric; sort within the whole slice for a stable worst-first
		// ranking across metrics.
		sort.SliceStable(s.TopWaitPaths, func(i, j int) bool {
			return s.TopWaitPaths[i].Percent > s.TopWaitPaths[j].Percent
		})
	}

	rep := tracecheck.VerifyStream(cf.Stream(), tracecheck.Options{Partial: !s.Done})
	s.ViolationTotal = rep.NumViolations()
	for k, n := range rep.Counts {
		if s.Violations == nil {
			s.Violations = make(map[string]int)
		}
		s.Violations[string(k)] = n
	}
}
