package live_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/scalasca"
	"repro/internal/trace"
	"repro/internal/tracecheck"
)

// pollingSink tees the measurement's records into a spill writer and
// polls the watcher synchronously every pollEvery records — a fully
// deterministic stand-in for a monitoring client hitting the tail
// mid-run.
type pollingSink struct {
	t         *testing.T
	cw        *trace.ChunkWriter
	w         *live.Watcher
	n         int
	pollEvery int

	lastEvents int
	lastChunks int
	polls      int
	sawChunks  bool
}

func (s *pollingSink) Region(name string, role trace.Role) trace.RegionID {
	return s.cw.Region(name, role)
}

func (s *pollingSink) AddLocation(rank, thread int) int {
	return s.cw.AddLocation(rank, thread)
}

func (s *pollingSink) Record(l int, e trace.Event) {
	s.cw.Record(l, e)
	s.n++
	if s.n%s.pollEvery != 0 {
		return
	}
	s.polls++
	sum, err := s.w.WaitStates()
	if err != nil {
		s.t.Fatalf("mid-run WaitStates: %v", err)
	}
	if sum.Done {
		s.t.Fatal("tail reported done while the run is still writing")
	}
	if sum.Damage != "" {
		s.t.Fatalf("mid-run damage: %s", sum.Damage)
	}
	if sum.Events < s.lastEvents || sum.Chunks < s.lastChunks {
		s.t.Fatalf("summary went backwards: events %d->%d chunks %d->%d",
			s.lastEvents, sum.Events, s.lastChunks, sum.Chunks)
	}
	s.lastEvents, s.lastChunks = sum.Events, sum.Chunks
	if sum.Chunks > 0 {
		s.sawChunks = true
	}
}

// TestWatcherConvergesToPostMortem runs a real instrumented simulation
// with the observatory tailing its spill, polling incrementally from
// inside the event stream, and asserts the final online analysis is
// deep-equal to the post-mortem AnalyzeStream over the finished file.
func TestWatcherConvergesToPostMortem(t *testing.T) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spill.ltrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultConfig(core.ModeStmt)
	cw := trace.NewChunkWriter(f, string(cfg.Mode))
	cw.AutoFlush = true
	cw.ChunkEvents = 256 // several chunks per location mid-run

	w, err := live.Watch(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sink := &pollingSink{t: t, cw: cw, w: w, pollEvery: 1000}

	res, err := experiment.RunWithOptions(spec, experiment.RunOptions{
		Cfg: &cfg, Seed: 1, Noise: noise.Cluster(), Analyze: true,
		TraceSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.polls == 0 || !sink.sawChunks {
		t.Fatalf("vacuous run: %d polls, sawChunks=%v", sink.polls, sink.sawChunks)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Final poll: the tail sees the sealed trace.
	sum, err := w.WaitStates()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done {
		t.Fatal("tail not done after the writer sealed the trace")
	}
	if sum.Events != res.Trace.NumEvents() {
		t.Fatalf("tailed %d events, run recorded %d", sum.Events, res.Trace.NumEvents())
	}
	if sum.AnalyzeError != "" {
		t.Fatalf("final analysis failed: %s", sum.AnalyzeError)
	}
	if sum.ViolationTotal != 0 {
		t.Fatalf("clean run reported %d violations: %v", sum.ViolationTotal, sum.Violations)
	}
	if len(sum.Waits) == 0 {
		t.Fatal("no wait-state metrics in the final summary")
	}

	// Convergence: online profile == post-mortem profile, exactly.
	online, err := w.Profile()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := trace.OpenChunkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	postMortem, err := scalasca.AnalyzeStream(cf.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(online, postMortem) {
		t.Fatal("online profile diverged from post-mortem AnalyzeStream")
	}
	// And the spill analyzes identically to the in-memory trace the run
	// returned (the sink mirrored every event faithfully).
	direct, err := scalasca.Analyze(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(online, direct) {
		t.Fatal("spill profile diverged from the run's own trace")
	}
	// Invariant checker agrees with its post-mortem run too.
	post := tracecheck.VerifyStream(cf.Stream(), tracecheck.Options{})
	if !post.OK() {
		t.Fatalf("post-mortem verification failed: %d violations", post.NumViolations())
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestMonitorEndpoints serves a sealed trace plus metrics and progress
// through the HTTP surface and checks every endpoint's contract.
func TestMonitorEndpoints(t *testing.T) {
	// A small sealed trace for /timeline and /waitstates.
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultConfig(core.ModeStmt)
	res, err := experiment.RunWithOptions(spec, experiment.RunOptions{
		Cfg: &cfg, Seed: 1, Noise: noise.Cluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.ltrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChunked(f, res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(7)
	clock := time.Unix(1000, 0)
	prog := obs.NewProgress(io.Discard, "test", func() time.Time { return clock })
	prog.Start(2, "jobs")
	prog.JobDone(1.5)

	mon := live.NewMonitor(live.Options{
		Registry:  reg,
		Progress:  prog,
		TracePath: path,
	})
	srv := httptest.NewServer(mon)
	defer srv.Close()
	defer mon.Close()

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if string(body[:len("demo_total 7")]) != "demo_total 7" {
		t.Fatalf("/metrics text = %q", body)
	}
	code, body = get(t, srv.URL+"/metrics?format=json")
	var snap obs.Snapshot
	if code != http.StatusOK || json.Unmarshal(body, &snap) != nil {
		t.Fatalf("/metrics?format=json = %d %q", code, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}

	code, body = get(t, srv.URL+"/progress?format=json")
	var st obs.ProgressState
	if code != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("/progress = %d %q", code, body)
	}
	if st.Done != 1 || st.Total != 2 || st.Percent != 50 {
		t.Fatalf("progress state = %+v", st)
	}

	code, body = get(t, srv.URL+"/waitstates")
	var sum live.WaitSummary
	if code != http.StatusOK || json.Unmarshal(body, &sum) != nil {
		t.Fatalf("/waitstates = %d %q", code, body)
	}
	if !sum.Done || sum.Events != res.Trace.NumEvents() {
		t.Fatalf("waitstates = done=%v events=%d (want %d)", sum.Done, sum.Events, res.Trace.NumEvents())
	}

	code, body = get(t, srv.URL+"/timeline")
	var tl struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if code != http.StatusOK || json.Unmarshal(body, &tl) != nil {
		t.Fatalf("/timeline = %d (%d bytes)", code, len(body))
	}
	if len(tl.TraceEvents) == 0 {
		t.Fatal("/timeline exported no events")
	}
}

// TestMonitorAbsentComponents asserts unwired endpoints answer 503, and
// that a trace path that appears later is picked up lazily.
func TestMonitorAbsentComponents(t *testing.T) {
	dir := t.TempDir()
	late := filepath.Join(dir, "late.ltrc")
	mon := live.NewMonitor(live.Options{TracePath: late})
	srv := httptest.NewServer(mon)
	defer srv.Close()
	defer mon.Close()

	for _, ep := range []string{"/metrics", "/progress", "/waitstates", "/timeline"} {
		if code, _ := get(t, srv.URL+ep); code != http.StatusServiceUnavailable {
			t.Fatalf("%s = %d before wiring, want 503", ep, code)
		}
	}

	// The recorder creates the file later; the monitor picks it up.
	tr := trace.New("lt_stmt")
	tr.Region("main", trace.RoleUser)
	tr.AddLocation(0, 0)
	tr.Record(0, trace.Event{Kind: trace.EvEnter, Time: 1})
	tr.Record(0, trace.Event{Kind: trace.EvExit, Time: 5})
	f, err := os.Create(late)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChunked(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv.URL+"/waitstates")
	var sum live.WaitSummary
	if code != http.StatusOK || json.Unmarshal(body, &sum) != nil {
		t.Fatalf("/waitstates after file appeared = %d %q", code, body)
	}
	if !sum.Done || sum.Events != 2 {
		t.Fatalf("waitstates = %+v", sum)
	}
}

// TestServerStart exercises the real listener path used by the -live
// flags (port 0 picks a free port).
func TestServerStart(t *testing.T) {
	srv, err := live.Start("127.0.0.1:0", live.Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}
