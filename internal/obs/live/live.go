package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/perfetto"
)

// Options selects which observatory surfaces a Monitor serves.  Every
// field is optional; an endpoint whose backing component is absent
// answers 503 so probes can tell "not wired" from "broken".
type Options struct {
	// Registry backs /metrics.
	Registry *obs.Registry
	// Progress backs /progress.
	Progress *obs.Progress
	// Timeline annotates the /timeline export (may be nil even when
	// TracePath is set).
	Timeline *obs.Timeline
	// TracePath is the chunked trace file to tail for /timeline and
	// /waitstates.  The watcher opens lazily on first request, so the
	// monitor may start before the recorder has created the file.
	TracePath string
	// SSEInterval is the /progress event cadence (default 1s).
	SSEInterval time.Duration
}

// Monitor is the HTTP observatory: an http.Handler exposing
//
//	/healthz    liveness probe
//	/metrics    registry snapshot (expvar-style text; ?format=json)
//	/progress   study progress (SSE stream; ?format=json for one shot)
//	/timeline   Perfetto trace-event JSON over the sealed trace prefix
//	/waitstates incremental wait-state and invariant summary
//
// All handlers are read-only with respect to the simulation.
type Monitor struct {
	opt Options
	mux *http.ServeMux

	mu      sync.Mutex
	watcher *Watcher
	watchEr error // sticky only while the file does not exist yet
}

// NewMonitor builds the observatory handler for the given components.
func NewMonitor(opt Options) *Monitor {
	if opt.SSEInterval <= 0 {
		opt.SSEInterval = time.Second
	}
	m := &Monitor{opt: opt, mux: http.NewServeMux()}
	m.mux.HandleFunc("/healthz", m.healthz)
	m.mux.HandleFunc("/metrics", m.metrics)
	m.mux.HandleFunc("/progress", m.progress)
	m.mux.HandleFunc("/timeline", m.timeline)
	m.mux.HandleFunc("/waitstates", m.waitstates)
	return m
}

// ServeHTTP dispatches to the observatory endpoints.
func (m *Monitor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// watch returns the lazily opened trace watcher, retrying the open on
// every call until the recorder has created the file.
func (m *Monitor) watch() (*Watcher, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.watcher != nil {
		return m.watcher, nil
	}
	if m.opt.TracePath == "" {
		return nil, fmt.Errorf("no trace attached")
	}
	w, err := Watch(m.opt.TracePath)
	if err != nil {
		m.watchEr = err
		return nil, err
	}
	m.watcher, m.watchEr = w, nil
	return w, nil
}

// Close releases the trace watcher, if one was opened.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.watcher == nil {
		return nil
	}
	err := m.watcher.Close()
	m.watcher = nil
	return err
}

func (m *Monitor) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (m *Monitor) metrics(w http.ResponseWriter, r *http.Request) {
	if m.opt.Registry == nil {
		http.Error(w, "metrics registry not attached", http.StatusServiceUnavailable)
		return
	}
	snap := m.opt.Registry.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.WriteText(w)
}

func (m *Monitor) progress(w http.ResponseWriter, r *http.Request) {
	if m.opt.Progress == nil {
		http.Error(w, "progress reporter not attached", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, m.opt.Progress.State())
		return
	}
	// SSE stream: one state event per tick until the study finishes or
	// the client goes away.
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fl, _ := w.(http.Flusher)
	send := func() bool {
		st := m.opt.Progress.State()
		b, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return !st.Finished
	}
	if !send() {
		return
	}
	tick := time.NewTicker(m.opt.SSEInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}

func (m *Monitor) timeline(w http.ResponseWriter, r *http.Request) {
	wa, err := m.watch()
	if err != nil {
		http.Error(w, "timeline unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if _, _, err := wa.Poll(); err != nil {
		http.Error(w, "trace tail: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = perfetto.ExportStream(w, wa.Stream(), m.opt.Timeline)
}

func (m *Monitor) waitstates(w http.ResponseWriter, r *http.Request) {
	wa, err := m.watch()
	if err != nil {
		http.Error(w, "waitstates unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s, err := wa.WaitStates()
	if err != nil {
		http.Error(w, "trace tail: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s)
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running observatory listener.
type Server struct {
	mon *Monitor
	ln  net.Listener
	srv *http.Server
}

// Start serves the observatory on addr (host:port; port 0 picks a free
// one) and returns immediately; the accept loop runs in a goroutine.
func Start(addr string, opt Options) (*Server, error) {
	mon := NewMonitor(opt)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mon}
	go func() { _ = srv.Serve(ln) }()
	return &Server{mon: mon, ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address ("127.0.0.1:8377").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Monitor returns the handler, for direct (in-process) queries.
func (s *Server) Monitor() *Monitor { return s.mon }

// Close stops the listener and releases the trace watcher.
func (s *Server) Close() error {
	err := s.srv.Close()
	if cerr := s.mon.Close(); err == nil {
		err = cerr
	}
	return err
}
