// Package obs is the simulator's self-observability layer: typed
// metrics with atomic hot-path updates, a leveled structured logger, a
// study progress reporter and a timeline annotation collector.  The
// paper's whole argument rests on measuring the measurement system —
// Score-P's dilation, per-mode overhead, wait-state attribution — and
// this package gives the reproduction the same property: every run can
// self-report what its kernel, runtime and study harness did.
//
// The package is stdlib-only and imports nothing from the repository,
// so every subsystem (vtime, simmpi, faults, experiment, runcache) can
// depend on it without cycles.
//
// # The observe-only invariant
//
// Metrics, logs, progress lines and timeline annotations must NEVER
// feed back into simulation state.  Instrumented code may increment a
// counter or emit a sample, but no simulation decision — a scheduling
// choice, a timestamp, a trace byte — may read one.  The invariant is
// enforced structurally (handles expose no hooks back into callers) and
// empirically: internal/experiment asserts byte-identical traces and
// profiles with metrics on and off.
//
// # Nil-safety
//
// Every handle method is safe on a nil receiver and does nothing, and a
// nil *Registry hands out nil handles.  Instrumented hot paths therefore
// carry no "is observability on?" branches beyond the nil check inside
// the handle itself, and disabling observability is the zero value.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.  Inc and Add are
// safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.  No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.  No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that also tracks its high-water mark.
// Set and Add are safe for concurrent use and allocation-free.
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Set records the current level and raises the high-water mark if v
// exceeds it.  No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur.Store(v)
	g.raise(v)
}

// Add shifts the current level by d (d may be negative) and raises the
// high-water mark if the new level exceeds it.  No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.raise(g.cur.Add(d))
}

func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.cur.Load()
}

// Max returns the high-water mark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets.  Observe is safe
// for concurrent use and allocation-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value.  No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics.  Handles are interned:
// asking twice for the same name returns the same handle, so subsystems
// instantiated per job (kernels, worlds, injectors) aggregate into one
// set of totals.  All methods are safe for concurrent use, and a nil
// *Registry hands out nil (no-op) handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter interns the named counter (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge interns the named gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram interns the named histogram with the given ascending bucket
// upper bounds (nil on a nil registry).  The bounds of the first
// interning win; later calls return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// CounterSnap is one counter's value at snapshot time.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's level and high-water mark at snapshot time.
type GaugeSnap struct {
	Max   int64  `json:"max"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram's distribution at snapshot time.
// Buckets[i] counts observations at or below Bounds[i]; the final
// bucket counts everything above the last bound.
type HistogramSnap struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Name    string    `json:"name"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by metric name so its renderings are deterministic.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current values, sorted by name.  A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.histograms {
		buckets := make([]uint64, len(h.counts))
		for i := range h.counts {
			buckets[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name: name, Bounds: append([]float64(nil), h.bounds...),
			Buckets: buckets, Count: h.Count(), Sum: h.Sum(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON renders the snapshot as indented JSON with a trailing
// newline.  Struct field order and the sorted sections make the bytes
// deterministic for equal values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteText renders the snapshot as expvar-style "name value" lines,
// one metric per line, sorted by name within each section.  Gauges emit
// a companion "<name>_max" line; histograms emit "<name>_count" and
// "<name>_sum".
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s %d\n%s_max %d\n", g.Name, g.Value, g.Name, g.Max); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %g\n", h.Name, h.Count, h.Name, h.Sum); err != nil {
			return err
		}
	}
	return nil
}
