package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// Field is one key=value pair of a structured log line.
type Field struct {
	Key string
	Val any
}

// F builds a log field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Logger writes leveled key=value lines with a deterministic field
// order: timestamp (only when a clock is injected), level, message,
// the logger's tags in the order they were attached, then the call's
// fields in argument order.  Determinism matters here the same way it
// does for traces — two runs of the same seed must be diffable — so the
// logger never consults a map and never reads the wall clock itself:
// timestamps appear only through an explicitly injected clock
// (SetClock), keeping the package clean under cmd/detlint.
//
// A nil *Logger discards everything, so instrumented code can log
// unconditionally.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	now   func() time.Time // nil: no timestamps
	tags  []Field
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: new(sync.Mutex), w: w, level: min}
}

// SetClock injects the time source used for the ts= field.  A nil clock
// (the default) omits timestamps entirely — the deterministic choice for
// artifact-adjacent output.  Callers that want real timestamps pass
// time.Now at the top level, where the determinism lint's allow
// directive marks the read as observe-only.
func (l *Logger) SetClock(now func() time.Time) {
	if l != nil {
		l.now = now
	}
}

// With returns a child logger whose lines carry the extra tags (for
// example the run's spec, mode and seed) after the parent's.  The child
// shares the parent's writer, level, clock and line mutex.
func (l *Logger) With(tags ...Field) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.tags = append(append([]Field(nil), l.tags...), tags...)
	return &child
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(lv Level, msg string, fields []Field) {
	if l == nil || lv < l.level {
		return
	}
	var b strings.Builder
	if l.now != nil {
		b.WriteString("ts=")
		b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for _, f := range l.tags {
		writeField(&b, f)
	}
	for _, f := range fields {
		writeField(&b, f)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

func writeField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	writeValue(b, f.Val)
}

// writeValue renders a field value, quoting strings that contain
// spaces, quotes or '=' so lines stay machine-splittable.
func writeValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") || x == "" {
			b.WriteString(strconv.Quote(x))
		} else {
			b.WriteString(x)
		}
	case error:
		writeValue(b, x.Error())
	case fmt.Stringer:
		writeValue(b, x.String())
	default:
		fmt.Fprintf(b, "%v", v)
	}
}
