package obs

import "sync"

// Mark is one instant annotation on the virtual timeline — a fault
// injection firing, a watchdog trip, anything that happens at a point
// in virtual time rather than over a span.
type Mark struct {
	T      float64 // virtual time, seconds
	Name   string  // short label, e.g. "oneoff rank 2"
	Detail string  // free-form detail, e.g. "delay 5ms"
}

// Sample is one point of a counter track — a named quantity sampled at
// a virtual time, such as a shared resource's fluid-model capacity.
type Sample struct {
	T     float64 // virtual time, seconds
	Track string  // series name, e.g. "capacity node0/nic"
	Value float64
}

// Timeline collects observe-only annotations during an in-process run
// for the Perfetto export: fault-injection instants and resource
// capacity samples.  The simulation writes it through narrow hooks
// (vtime's capacity observer, the fault injector's mark hook) and never
// reads it back.  Methods are safe on a nil *Timeline and safe for
// concurrent use, although the vtime kernel is single-threaded.
type Timeline struct {
	mu      sync.Mutex
	marks   []Mark
	samples []Sample
}

// AddMark appends an instant annotation.  No-op on a nil timeline.
func (tl *Timeline) AddMark(t float64, name, detail string) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.marks = append(tl.marks, Mark{T: t, Name: name, Detail: detail})
}

// AddSample appends a counter-track sample.  No-op on a nil timeline.
func (tl *Timeline) AddSample(t float64, track string, v float64) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.samples = append(tl.samples, Sample{T: t, Track: track, Value: v})
}

// Marks returns a copy of the collected instant annotations in record
// order (nil on a nil timeline).
func (tl *Timeline) Marks() []Mark {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]Mark(nil), tl.marks...)
}

// Samples returns a copy of the collected counter samples in record
// order (nil on a nil timeline).
func (tl *Timeline) Samples() []Sample {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]Sample(nil), tl.samples...)
}
