package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every handle and the registry itself must be inert at
// their zero/nil values, so instrumented code never branches on
// "observability enabled".
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", 1) != nil {
		t.Fatal("nil registry handed out a live handle")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot is not empty")
	}
	var l *Logger
	l.Info("dropped", F("k", 1))
	l.With(F("a", 1)).Error("dropped")
	var p *Progress
	p.Start(10, "jobs")
	p.JobDone(1)
	p.Finish()
	var tl *Timeline
	tl.AddMark(1, "m", "")
	tl.AddSample(1, "t", 2)
	if tl.Marks() != nil || tl.Samples() != nil {
		t.Fatal("nil timeline holds data")
	}
}

// TestRegistryRace hammers shared handles from concurrent goroutines the
// way pool workers do; run with -race (CI does) to prove the hot paths
// are data-race free, and check the totals to prove no increment is
// lost.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Intern inside the worker: pool jobs build their metric
			// structs concurrently too.
			c := r.Counter("jobs")
			g := r.Gauge("heap")
			h := r.Histogram("cost", 1, 10, 100)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("jobs").Value(); got != workers*per {
		t.Fatalf("counter lost increments: got %d, want %d", got, workers*per)
	}
	if got := r.Histogram("cost").Count(); got != workers*per {
		t.Fatalf("histogram lost observations: got %d, want %d", got, workers*per)
	}
	if max := r.Gauge("heap").Max(); max != per-1 {
		t.Fatalf("gauge high-water %d, want %d", max, per-1)
	}
}

// TestHotPathAllocs gates the instrumented kernel paths: metric updates
// must be allocation-free whether the handle is live or nil.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 2, 4, 8)
	var nilC *Counter
	var nilG *Gauge
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(7)
		g.Add(-1)
		nilC.Inc()
		nilG.Set(1)
	}); n != 0 {
		t.Fatalf("counter/gauge hot path allocates %g per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.5) }); n != 0 {
		t.Fatalf("histogram observe allocates %g per run, want 0", n)
	}
}

// TestSnapshotDeterministic: same values in, byte-identical renderings
// out, regardless of interning order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(uint64(len(name)))
		}
		r.Gauge("heap").Set(42)
		r.Histogram("cost", 1, 10).Observe(3)
		return r
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	var ja, jb, ta, tb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("JSON snapshots differ:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	a.Snapshot().WriteText(&ta)
	b.Snapshot().WriteText(&tb)
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatalf("text snapshots differ:\n%s\nvs\n%s", ta.String(), tb.String())
	}
	// Sorted: alpha < mid < zeta in both renderings.
	txt := ta.String()
	if !(strings.Index(txt, "alpha") < strings.Index(txt, "mid") &&
		strings.Index(txt, "mid") < strings.Index(txt, "zeta")) {
		t.Fatalf("text snapshot not sorted by name:\n%s", txt)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms[0]
	// SearchFloat64s: bucket i counts v <= bounds[i] (values equal to a
	// bound land in its bucket), last bucket counts v > last bound.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count %d sum %g, want 5 and 556.5", s.Count, s.Sum)
	}
}
