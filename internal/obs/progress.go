package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live study progress reporter.  The experiment pool
// calls JobDone/JobRetried/JobDropped/CacheHit as its workers finish
// jobs; Progress prints a periodic one-line summary — job-grid
// completion, retry/drop counts, cache hits and an ETA — to its writer
// (conventionally stderr, so stdout artifacts are never perturbed).
//
// The ETA weighs completed jobs by their virtual cost: the wall-clock
// rate observed so far is wall-elapsed / virtual-seconds-completed, and
// the remaining grid is assumed to cost the mean virtual seconds of the
// jobs that have finished.  That estimate converges much faster than a
// plain jobs-done ratio when a grid mixes large and small
// configurations, because a job's wall cost tracks its virtual cost.
//
// Progress never reads the wall clock itself: the clock is injected at
// construction (cmd binaries pass time.Now under a determinism-lint
// allow directive; tests pass a fake).  All methods are safe for
// concurrent use and safe on a nil *Progress, so the pool can report
// unconditionally.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	now   func() time.Time
	every time.Duration

	what      string
	total     int
	done      int
	retried   int
	dropped   int
	cacheHits int
	vDone     float64 // virtual seconds of completed jobs
	finished  bool

	started   time.Time
	lastPrint time.Time
	// printedDone is the done count when a progress line was last
	// printed, so Finish can tell whether the final state ever reached
	// the terminal and emit the 100 % line if the throttle (or a
	// JobDropped ending the grid) swallowed it.
	printedDone int
}

// NewProgress returns a reporter writing to w, tagged with label.  now
// supplies wall time for the print cadence and the ETA; it must be
// non-nil.  Lines are printed at most once per second.
func NewProgress(w io.Writer, label string, now func() time.Time) *Progress {
	return &Progress{w: w, label: label, now: now, every: time.Second}
}

// Start announces a job grid of the given size and resets the counters.
// No-op on a nil reporter.
func (p *Progress) Start(total int, what string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.what = what
	p.total, p.done, p.retried, p.dropped, p.cacheHits, p.vDone = total, 0, 0, 0, 0, 0
	p.finished = false
	p.printedDone = 0
	p.started = p.now()
	p.lastPrint = p.started
	fmt.Fprintf(p.w, "%s: %s: %d jobs queued\n", p.label, what, total)
}

// JobDone records one completed job and its virtual cost in seconds,
// printing a progress line if enough wall time has passed.
func (p *Progress) JobDone(virtualSeconds float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.vDone += virtualSeconds
	p.maybePrintLocked()
}

// JobRetried records one retried job.
func (p *Progress) JobRetried() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retried++
}

// JobDropped records one job dropped after its retry also failed.  A
// drop still advances the grid, so it gets the same print check as
// JobDone: a grid whose last job drops must still report 100 %.
func (p *Progress) JobDropped() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropped++
	p.done++
	p.maybePrintLocked()
}

// maybePrintLocked prints a progress line when the grid just completed
// or the throttle window has elapsed.
func (p *Progress) maybePrintLocked() {
	if t := p.now(); p.done == p.total || t.Sub(p.lastPrint) >= p.every {
		p.lastPrint = t
		p.printLocked(t)
	}
}

// CacheHit records one job served from the run cache (also counted by
// the JobDone that follows it).
func (p *Progress) CacheHit() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cacheHits++
}

// Finish prints the final summary line.  If the last progress line the
// throttle let through predates the final job — the grid finished
// inside the one-second window — the 100 % line is emitted first, so a
// study's output always ends at 100 %.  No-op on a nil reporter.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.now()
	if p.printedDone < p.done {
		p.printLocked(t)
	}
	p.finished = true
	fmt.Fprintf(p.w, "%s: done: %d/%d jobs in %s (%d retried, %d dropped, %d cache hits, virtual %.3gs)\n",
		p.label, p.done, p.total, t.Sub(p.started).Round(time.Millisecond),
		p.retried, p.dropped, p.cacheHits, p.vDone)
}

// ProgressState is a point-in-time snapshot of a Progress reporter, in
// the shape the live monitor's /progress endpoint serialises.
type ProgressState struct {
	Label      string  `json:"label"`
	What       string  `json:"what,omitempty"`
	Total      int     `json:"total"`
	Done       int     `json:"done"`
	Retried    int     `json:"retried"`
	Dropped    int     `json:"dropped"`
	CacheHits  int     `json:"cache_hits"`
	VirtualSec float64 `json:"virtual_seconds"`
	Percent    float64 `json:"percent"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	ETASec     float64 `json:"eta_seconds"` // 0 when no estimate yet
	Finished   bool    `json:"finished"`
}

// State returns a snapshot of the counters.  Safe on a nil reporter
// (returns the zero state).
func (p *Progress) State() ProgressState {
	if p == nil {
		return ProgressState{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.now()
	s := ProgressState{
		Label: p.label, What: p.what,
		Total: p.total, Done: p.done,
		Retried: p.retried, Dropped: p.dropped, CacheHits: p.cacheHits,
		VirtualSec: p.vDone,
		Finished:   p.finished,
	}
	if p.total > 0 {
		s.Percent = 100 * float64(p.done) / float64(p.total)
	}
	if !p.started.IsZero() {
		s.ElapsedSec = t.Sub(p.started).Seconds()
	}
	if eta, ok := p.etaLocked(t); ok {
		s.ETASec = eta.Seconds()
	}
	return s
}

func (p *Progress) printLocked(t time.Time) {
	p.printedDone = p.done
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(p.done) / float64(p.total)
	}
	line := fmt.Sprintf("%s: %d/%d jobs (%.0f%%)", p.label, p.done, p.total, pct)
	if p.retried > 0 || p.dropped > 0 {
		line += fmt.Sprintf(", %d retried, %d dropped", p.retried, p.dropped)
	}
	if p.cacheHits > 0 {
		line += fmt.Sprintf(", %d cache hits", p.cacheHits)
	}
	if eta, ok := p.etaLocked(t); ok {
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}

// etaLocked estimates the remaining wall time from the virtual cost of
// completed jobs; ok is false until at least one job with positive
// virtual cost has finished.
func (p *Progress) etaLocked(t time.Time) (time.Duration, bool) {
	if p.done == 0 || p.vDone <= 0 || p.done >= p.total {
		return 0, false
	}
	elapsed := t.Sub(p.started)
	meanV := p.vDone / float64(p.done)
	remainingV := meanV * float64(p.total-p.done)
	return time.Duration(float64(elapsed) * remainingV / p.vDone), true
}
