package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	run := l.With(F("spec", "MiniFE-1"), F("mode", "lt_stmt"), F("seed", 3))
	run.Debug("filtered out")
	run.Info("job done", F("rep", 2), F("wall", 0.125), F("note", "has spaces"))
	run.Error("boom", F("err", "deadlock at t=3"))
	got := buf.String()
	want := `level=info msg="job done" spec=MiniFE-1 mode=lt_stmt seed=3 rep=2 wall=0.125 note="has spaces"
level=error msg=boom spec=MiniFE-1 mode=lt_stmt seed=3 err="deadlock at t=3"
`
	if got != want {
		t.Fatalf("log output:\n%q\nwant:\n%q", got, want)
	}
}

// TestLoggerInjectedClock: timestamps appear only through an injected
// clock — the logger itself must never read wall time, so the default
// output carries no ts= field and an injected fake clock is rendered
// verbatim.
func TestLoggerInjectedClock(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("no clock")
	if strings.Contains(buf.String(), "ts=") {
		t.Fatalf("timestamp without an injected clock: %q", buf.String())
	}
	buf.Reset()
	fake := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fake })
	l.Info("with clock")
	if want := "ts=2026-08-06T12:00:00Z level=info msg=\"with clock\"\n"; buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("no")
	l.Info("no")
	l.Warn("yes")
	l.Error("yes")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("level gate passed %d lines, want 2:\n%s", n, buf.String())
	}
}

// TestProgressReporting drives the reporter with a fake clock and
// checks the cadence, the counts and the virtual-cost ETA.
func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	now := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	p := NewProgress(&buf, "study", clock)
	p.Start(4, "MiniFE-1 grid")
	p.CacheHit()
	p.JobDone(1.0)
	now = now.Add(2 * time.Second) // past the 1s cadence
	p.JobDone(1.0)
	p.JobRetried()
	p.JobDropped()
	now = now.Add(time.Second)
	p.JobDone(1.0)
	p.Finish()
	out := buf.String()
	for _, want := range []string{
		"study: MiniFE-1 grid: 4 jobs queued",
		"study: 2/4 jobs (50%)",
		"1 cache hits",
		"eta 2s", // 2s elapsed for 2.0 virtual s done, 2 jobs left at mean 1.0 virtual s
		"study: done: 4/4 jobs",
		"1 retried, 1 dropped",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
}
