package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced wall clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestProgressFinalLine pins the throttle bug: when every job finishes
// inside the one-second print window, the study must still end with a
// 100 % line before the done summary.
func TestProgressFinalLine(t *testing.T) {
	clock := &fakeClock{t: time.Unix(100, 0)}
	var sb strings.Builder
	p := NewProgress(&sb, "study", clock.now)
	p.Start(3, "jobs")
	clock.advance(200 * time.Millisecond) // all inside the throttle window
	p.JobDone(1)
	p.JobDone(1)
	p.JobDone(1)
	p.Finish()
	out := sb.String()
	if !strings.Contains(out, "3/3 jobs (100%)") {
		t.Fatalf("no 100%% line in output:\n%s", out)
	}
	if !strings.Contains(out, "done: 3/3 jobs") {
		t.Fatalf("no done summary in output:\n%s", out)
	}
	// The 100 % line printed exactly once: at p.done == p.total, not
	// again from Finish.
	if n := strings.Count(out, "(100%)"); n != 1 {
		t.Fatalf("100%% line printed %d times:\n%s", n, out)
	}
}

// TestProgressFinalLineAfterThrottledFinish covers the Finish-side fix:
// the last print the throttle let through predates the final jobs, so
// Finish itself must emit the catch-up line.
func TestProgressFinalLineAfterThrottledFinish(t *testing.T) {
	clock := &fakeClock{t: time.Unix(100, 0)}
	var sb strings.Builder
	p := NewProgress(&sb, "study", clock.now)
	p.Start(4, "jobs")
	clock.advance(2 * time.Second)
	p.JobDone(1) // prints 1/4 (throttle elapsed)
	clock.advance(100 * time.Millisecond)
	p.JobDone(1) // silent
	p.JobRetried()
	p.JobDropped() // silent (3/4 done)
	// The grid never reaches total (one job lost elsewhere): Finish must
	// still surface the final state.
	p.Finish()
	out := sb.String()
	if !strings.Contains(out, "3/4 jobs (75%)") {
		t.Fatalf("no catch-up line for the final state:\n%s", out)
	}
	if !strings.Contains(out, "1 retried, 1 dropped") {
		t.Fatalf("final line lacks retry/drop counts:\n%s", out)
	}
}

// TestProgressDroppedCompletesGrid asserts a grid whose last job drops
// still prints its 100 % line from JobDropped.
func TestProgressDroppedCompletesGrid(t *testing.T) {
	clock := &fakeClock{t: time.Unix(100, 0)}
	var sb strings.Builder
	p := NewProgress(&sb, "study", clock.now)
	p.Start(2, "jobs")
	clock.advance(10 * time.Millisecond)
	p.JobDone(1)
	p.JobDropped()
	if !strings.Contains(sb.String(), "2/2 jobs (100%)") {
		t.Fatalf("dropped last job did not print completion:\n%s", sb.String())
	}
}

// TestProgressState covers the observatory snapshot.
func TestProgressState(t *testing.T) {
	var nilP *Progress
	if s := nilP.State(); s != (ProgressState{}) {
		t.Fatalf("nil progress state = %+v", s)
	}
	clock := &fakeClock{t: time.Unix(100, 0)}
	var sb strings.Builder
	p := NewProgress(&sb, "study", clock.now)
	p.Start(4, "grid")
	clock.advance(10 * time.Second)
	p.JobDone(5)
	p.JobDone(5)
	p.CacheHit()
	s := p.State()
	if s.Label != "study" || s.What != "grid" {
		t.Fatalf("state identity = %+v", s)
	}
	if s.Done != 2 || s.Total != 4 || s.Percent != 50 || s.CacheHits != 1 {
		t.Fatalf("state counters = %+v", s)
	}
	if s.ElapsedSec != 10 {
		t.Fatalf("elapsed = %g, want 10", s.ElapsedSec)
	}
	// 2 of 4 jobs in 10s at uniform virtual cost: 10s remain.
	if s.ETASec != 10 {
		t.Fatalf("eta = %g, want 10", s.ETASec)
	}
	if s.Finished {
		t.Fatal("finished before Finish")
	}
	p.JobDone(5)
	p.JobDone(5)
	p.Finish()
	if s := p.State(); !s.Finished || s.Percent != 100 {
		t.Fatalf("post-finish state = %+v", s)
	}
}
