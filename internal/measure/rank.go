package measure

import (
	"repro/internal/core"
	"repro/internal/simmpi"
	"repro/internal/trace"
	"repro/internal/work"
)

// Rank is the application-facing handle for one MPI rank.  All application
// code — regions, work quanta, MPI calls, OpenMP constructs — goes through
// it, so the same program runs instrumented (m != nil) or as an
// uninstrumented reference (m == nil).
type Rank struct {
	P *simmpi.Proc

	m    *Measurement
	rec  *recorder   // master thread's recorder (nil when off)
	recs []*recorder // per-thread recorders, index = thread id
	tw   *teamWrap

	collSeq map[*simmpi.Comm]int32
	commIDs map[*simmpi.Comm]int32 // rank-local cache of Measurement.commID
}

// NewRank wraps a rank for measurement.  m may be nil for an
// uninstrumented run.  Call Begin/End (or let the experiment runner do
// it) around the application body.
func NewRank(m *Measurement, p *simmpi.Proc) *Rank {
	r := &Rank{P: p, m: m,
		collSeq: make(map[*simmpi.Comm]int32),
		commIDs: make(map[*simmpi.Comm]int32),
	}
	if m == nil {
		return r
	}
	locs := p.Team.Locations()
	r.recs = make([]*recorder, len(locs))
	for i, l := range locs {
		r.recs[i] = m.newRecorder(l)
	}
	r.rec = r.recs[0]
	r.tw = &teamWrap{rank: r, barPB: make(map[int32]uint64)}
	return r
}

// Measured reports whether this run records events.
func (r *Rank) Measured() bool { return r.m != nil }

// Rank returns the MPI rank number.
func (r *Rank) Rank() int { return r.P.Rank }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.P.W.CommWorld().Size() }

// Threads returns the OpenMP team size.
func (r *Rank) Threads() int { return r.P.Team.Size() }

// Now returns the rank master's current true virtual time (used for
// reference timings and overhead computation, not for trace stamps).
func (r *Rank) Now() float64 { return r.P.Loc.Now() }

// SpreadWorkingSet registers totalBytes of application working set spread
// evenly over the NUMA domains the rank's threads are pinned to — the
// effect of first-touch allocation in a parallel initialisation.  It
// returns a release function that unregisters the same amount.
//
// Under the parallel kernel, call it before the rank's first blocking
// operation (apps allocate before they communicate, so this is the
// natural shape): the first registration on a NUMA domain shared with
// other lookahead domains permanently pins the sharers onto the commit
// path, and a first-turn call guarantees no concurrently scheduled turn
// has read the miss ratio the registration is about to change.
func (r *Rank) SpreadWorkingSet(totalBytes float64) (release func()) {
	if r.P.W.MemoryShared(r.P.Rank) {
		r.P.Loc.Actor.Exclusive()
		r.P.W.PinRankMemory(r.P.Rank)
	}
	locs := r.P.Team.Locations()
	per := totalBytes / float64(len(locs))
	for _, l := range locs {
		l.M.AddWorkingSet(l.Core, per)
	}
	return func() {
		for _, l := range locs {
			l.M.AddWorkingSet(l.Core, -per)
		}
	}
}

// Begin opens the program region on the master thread.
func (r *Rank) Begin() {
	if r.m != nil {
		r.rec.enter("main", trace.RoleUser)
	}
}

// End closes the program region and flushes residual overhead.  Only the
// master's recorder is flushed here: worker recorders force-flush at the
// end of every parallel region on their own actors (a recorder's overhead
// must only ever be simulated from the goroutine of the actor that owns
// it).
func (r *Rank) End() {
	if r.m == nil {
		return
	}
	r.rec.exit()
	r.rec.flush(true)
}

// Enter opens a user region on the master thread.
func (r *Rank) Enter(name string) {
	if r.m != nil {
		r.rec.flush(false)
		r.rec.enter(name, trace.RoleUser)
	}
}

// Exit closes the current user region on the master thread.
func (r *Rank) Exit() {
	if r.m != nil {
		r.rec.exit()
	}
}

// Region runs fn inside a user region.
func (r *Rank) Region(name string, fn func()) {
	r.Enter(name)
	fn()
	r.Exit()
}

// Work executes a quantum of sequential (master thread) application work.
func (r *Rank) Work(c work.Cost) {
	if r.m == nil {
		r.P.Loc.Work(c)
		return
	}
	r.rec.flush(false)
	r.P.Loc.WorkOverhead(c, r.countingInstr(c))
}

// countingInstr returns the mode-specific per-count instrumentation cost
// riding along with a work quantum: the amortised per-call event fast
// path (every mode), the LLVM plugin's counters (lt_bb/lt_stmt), Opari2's
// loop counters (lt_loop), and per-call counter reads (lt_hwctr).  These
// instructions execute inside the quantum (see Location.WorkOverhead), so
// bandwidth-bound loops hide them while instruction-bound code pays in
// full — the reason Table I's overheads differ so much between MiniFE's
// pointer-chasing init and its streaming solver.
func (r *Rank) countingInstr(c work.Cost) float64 {
	oh := &r.m.Cfg.Overhead
	extra := c.Calls * oh.CallInstr
	switch r.m.Cfg.Mode {
	case core.ModeBB:
		extra += c.BB * oh.PerBBInstr
	case core.ModeStmt, core.ModeWStmt:
		extra += c.Stmt * oh.PerStmtInstr
	case core.ModeLoop:
		extra += c.LoopIters * oh.PerIterInstr
	case core.ModeHwctr, core.ModeHwComb:
		extra += c.Calls * oh.CallCounterInstr
	}
	return extra
}

// spin charges the elapsed in-library time to the hardware instruction
// counter (visible to lt_hwctr only).
func (r *Rank) spin(rec *recorder, start float64) {
	rec.loc.SpinFor(rec.loc.Now() - start)
}

// ---- MPI wrappers (the PMPI layer) ----

// Send is the measured blocking send.
func (r *Rank) Send(dst, tag int, data []float64, bytes int) {
	if r.m == nil {
		r.P.Send(dst, tag, data, bytes, 0)
		return
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Send", trace.RoleMPIP2P)
	rec.event(trace.EvSend, 0, int32(dst), int32(tag), int64(bytes))
	pb := rec.clock.SendPB()
	t0 := rec.loc.Now()
	r.P.Send(dst, tag, data, bytes, pb)
	r.spin(rec, t0)
	rec.exit()
}

// Recv is the measured blocking receive.
func (r *Rank) Recv(src, tag int) *simmpi.Message {
	if r.m == nil {
		return r.P.Recv(src, tag)
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Recv", trace.RoleMPIP2P)
	t0 := rec.loc.Now()
	msg := r.P.Recv(src, tag)
	r.spin(rec, t0)
	rec.clock.RecvPB(msg.Piggyback)
	rec.event(trace.EvRecv, 0, int32(msg.Src), int32(msg.Tag), int64(msg.Bytes))
	rec.exit()
	return msg
}

// Isend is the measured nonblocking send.
func (r *Rank) Isend(dst, tag int, data []float64, bytes int) *simmpi.Request {
	if r.m == nil {
		return r.P.Isend(dst, tag, data, bytes, 0)
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Isend", trace.RoleMPIP2P)
	rec.event(trace.EvSend, 0, int32(dst), int32(tag), int64(bytes))
	pb := rec.clock.SendPB()
	t0 := rec.loc.Now()
	req := r.P.Isend(dst, tag, data, bytes, pb)
	r.spin(rec, t0)
	rec.exit()
	return req
}

// Irecv is the measured nonblocking receive; the matching Recv event is
// recorded when the request completes in Wait or Waitall.
func (r *Rank) Irecv(src, tag int) *simmpi.Request {
	if r.m == nil {
		return r.P.Irecv(src, tag)
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Irecv", trace.RoleMPIP2P)
	t0 := rec.loc.Now()
	req := r.P.Irecv(src, tag)
	r.spin(rec, t0)
	rec.exit()
	return req
}

// Waitall completes the given requests; receive completions record their
// Recv events here, inside the MPI_Waitall region (which is where
// lt_hwctr sees spin-wait effort, paper §V-C3).
func (r *Rank) Waitall(reqs []*simmpi.Request) {
	if r.m == nil {
		r.P.Waitall(reqs)
		return
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Waitall", trace.RoleMPIWait)
	t0 := rec.loc.Now()
	r.P.Waitall(reqs)
	r.spin(rec, t0)
	for _, q := range reqs {
		if q.Done() && q.IsRecv() {
			msg := q.Msg()
			rec.clock.RecvPB(msg.Piggyback)
			rec.event(trace.EvRecv, 0, int32(msg.Src), int32(msg.Tag), int64(msg.Bytes))
		}
	}
	rec.exit()
}

// Wait completes a single request.
func (r *Rank) Wait(req *simmpi.Request) {
	r.Waitall([]*simmpi.Request{req})
}

// Waitany completes one of the requests and returns its index; a
// completed receive records its Recv event inside the MPI_Waitany region.
func (r *Rank) Waitany(reqs []*simmpi.Request) int {
	if r.m == nil {
		return r.P.Waitany(reqs)
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Waitany", trace.RoleMPIWait)
	t0 := rec.loc.Now()
	i := r.P.Waitany(reqs)
	r.spin(rec, t0)
	if q := reqs[i]; q.IsRecv() {
		msg := q.Msg()
		rec.clock.RecvPB(msg.Piggyback)
		rec.event(trace.EvRecv, 0, int32(msg.Src), int32(msg.Tag), int64(msg.Bytes))
	}
	rec.exit()
	return i
}

// collective wraps the common instrumentation of a collective call.
func (r *Rank) collective(comm *simmpi.Comm, name string, bytes int64, call func(pb uint64) uint64) {
	if r.m == nil {
		call(0)
		return
	}
	rec := r.rec
	rec.flush(false)
	rec.enter(name, trace.RoleMPIColl)
	pb := rec.clock.SendPB()
	t0 := rec.loc.Now()
	maxPB := call(pb)
	r.spin(rec, t0)
	rec.clock.RecvPB(maxPB)
	seq := r.collSeq[comm]
	r.collSeq[comm] = seq + 1
	id, ok := r.commIDs[comm]
	if !ok {
		// First collective on this communicator from this rank: the global
		// id table may only be touched from commit order.
		r.P.Loc.Actor.Exclusive()
		id = r.m.commID(comm)
		r.commIDs[comm] = id
	}
	rec.event(trace.EvCollEnd, 0, id, seq, bytes)
	rec.exit()
}

// Barrier is the measured MPI barrier on the world communicator.
func (r *Rank) Barrier() {
	comm := r.P.W.CommWorld()
	r.collective(comm, string(simmpi.CollBarrier), 0, func(pb uint64) uint64 {
		return comm.Barrier(r.P, pb)
	})
}

// Allreduce is the measured MPI_Allreduce on the world communicator.
func (r *Rank) Allreduce(data []float64, op simmpi.Op) []float64 {
	comm := r.P.W.CommWorld()
	var out []float64
	r.collective(comm, string(simmpi.CollAllreduce), int64(8*len(data)), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Allreduce(r.P, data, op, pb)
		return maxPB
	})
	return out
}

// Bcast is the measured MPI_Bcast on the world communicator.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	comm := r.P.W.CommWorld()
	var out []float64
	r.collective(comm, string(simmpi.CollBcast), int64(8*len(data)), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Bcast(r.P, root, data, pb)
		return maxPB
	})
	return out
}

// Allgather is the measured MPI_Allgather on the world communicator.
func (r *Rank) Allgather(data []float64) [][]float64 {
	comm := r.P.W.CommWorld()
	var out [][]float64
	r.collective(comm, string(simmpi.CollAllgather), int64(8*len(data)*comm.Size()), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Allgather(r.P, data, pb)
		return maxPB
	})
	return out
}

// Alltoall is the measured MPI_Alltoall on the world communicator.
func (r *Rank) Alltoall(data [][]float64) [][]float64 {
	comm := r.P.W.CommWorld()
	var bytes int64
	for _, d := range data {
		bytes += int64(8 * len(d))
	}
	var out [][]float64
	r.collective(comm, string(simmpi.CollAlltoall), bytes, func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Alltoall(r.P, data, pb)
		return maxPB
	})
	return out
}
