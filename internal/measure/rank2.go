package measure

import (
	"repro/internal/simmpi"
	"repro/internal/trace"
)

// Measured wrappers for the extended collective set and Sendrecv.

// Reduce is the measured MPI_Reduce on the world communicator.
func (r *Rank) Reduce(root int, data []float64, op simmpi.Op) []float64 {
	comm := r.P.W.CommWorld()
	var out []float64
	r.collective(comm, string(simmpi.CollReduce), int64(8*len(data)), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Reduce(r.P, root, data, op, pb)
		return maxPB
	})
	return out
}

// Gather is the measured MPI_Gather on the world communicator.
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	comm := r.P.W.CommWorld()
	var out [][]float64
	r.collective(comm, string(simmpi.CollGather), int64(8*len(data)), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Gather(r.P, root, data, pb)
		return maxPB
	})
	return out
}

// Scatter is the measured MPI_Scatter on the world communicator.
func (r *Rank) Scatter(root int, data [][]float64) []float64 {
	comm := r.P.W.CommWorld()
	var bytes int64
	for _, d := range data {
		bytes += int64(8 * len(d))
	}
	var out []float64
	r.collective(comm, string(simmpi.CollScatter), bytes, func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Scatter(r.P, root, data, pb)
		return maxPB
	})
	return out
}

// Scan is the measured MPI_Scan on the world communicator.
func (r *Rank) Scan(data []float64, op simmpi.Op) []float64 {
	comm := r.P.W.CommWorld()
	var out []float64
	r.collective(comm, string(simmpi.CollScan), int64(8*len(data)), func(pb uint64) uint64 {
		var maxPB uint64
		out, maxPB = comm.Scan(r.P, data, op, pb)
		return maxPB
	})
	return out
}

// Sendrecv is the measured paired exchange: a send event for the outgoing
// message and a receive event for the incoming one, inside one region.
func (r *Rank) Sendrecv(dst, sendTag int, data []float64, bytes int, src, recvTag int) *simmpi.Message {
	if r.m == nil {
		msg, _ := r.P.Sendrecv(dst, sendTag, data, bytes, src, recvTag, 0)
		return msg
	}
	rec := r.rec
	rec.flush(false)
	rec.enter("MPI_Sendrecv", trace.RoleMPIP2P)
	rec.event(trace.EvSend, 0, int32(dst), int32(sendTag), int64(bytes))
	pb := rec.clock.SendPB()
	t0 := rec.loc.Now()
	msg, _ := r.P.Sendrecv(dst, sendTag, data, bytes, src, recvTag, pb)
	r.spin(rec, t0)
	rec.clock.RecvPB(msg.Piggyback)
	rec.event(trace.EvRecv, 0, int32(msg.Src), int32(msg.Tag), int64(msg.Bytes))
	rec.exit()
	return msg
}
