// Package measure is the measurement system — the role Score-P plays in
// the paper.  It wraps the simulated MPI and OpenMP runtimes with
// event-recording adapters (the analogues of the PMPI wrappers and Opari2
// instrumentation), stamps every event with the configured clock
// (internal/core), injects the measurement system's own overhead into the
// simulation, and assembles the trace (internal/trace).
//
// Applications are written against Rank and Thread; passing a nil
// *Measurement runs the same code uninstrumented, which is how reference
// timings are taken.
package measure

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/loc"
	"repro/internal/simmpi"
	"repro/internal/trace"
	"repro/internal/work"
)

// Measurement is one instrumented run: a configuration plus the trace
// being assembled.  Create it with New, wrap each rank's Proc via Rank,
// and read Trace when the simulation finishes.
type Measurement struct {
	Cfg   Config
	Trace *trace.Trace

	commIDs map[*simmpi.Comm]int32
	recs    map[int]*recorder // by location index
}

// New creates an empty measurement for one run.
func New(cfg Config) *Measurement {
	return &Measurement{
		Cfg:     cfg,
		Trace:   trace.New(string(cfg.Mode)),
		commIDs: make(map[*simmpi.Comm]int32),
		recs:    make(map[int]*recorder),
	}
}

func (m *Measurement) commID(c *simmpi.Comm) int32 {
	if id, ok := m.commIDs[c]; ok {
		return id
	}
	id := int32(len(m.commIDs))
	m.commIDs[c] = id
	return id
}

// recorder is the per-location measurement state: the clock, the region
// stack and the pending (not yet simulated) instrumentation overhead.
type recorder struct {
	m     *Measurement
	loc   *loc.Location
	clock core.Clock
	locIx int // index into Trace.Locs

	stack []stackEntry
	// names mirrors the unfiltered region names on the stack; its join
	// is the location's current call path, used to root worker threads
	// under the master's fork-time path the way Scalasca does.
	names []string

	// regions caches this location's view of the trace's global region
	// intern table.  Under the parallel kernel the global table may only
	// be touched from commit order (Actor.Exclusive), so enter consults
	// the cache first and pays the exclusive turn only on first sight of
	// a name — the interleaving of first-interns, and therefore every
	// region id, stays the sequential one.
	regions map[string]trace.RegionID

	pendingInstr  float64
	pendingBytes  float64
	bufEvents     int     // events since last working-set update
	bufRegistered float64 // buffer bytes already added to the working set
	barSeen       int32
}

type stackEntry struct {
	region   trace.RegionID
	filtered bool
}

func (m *Measurement) newRecorder(l *loc.Location) *recorder {
	if _, ok := m.recs[l.Index]; ok {
		panic(fmt.Sprintf("measure: location %d already has a recorder", l.Index))
	}
	clk := core.New(m.Cfg.Mode, l, l.Noise)
	if m.Cfg.DisablePiggyback {
		clk = noSyncClock{clk}
	}
	r := &recorder{
		m:     m,
		loc:   l,
		clock: clk,
		locIx: m.Trace.AddLocation(l.Rank, l.Thread),
	}
	m.recs[l.Index] = r
	return r
}

// noSyncClock drops incoming piggybacks (ablation of Algorithm 1 step 2).
type noSyncClock struct{ core.Clock }

func (noSyncClock) RecvPB(uint64) {}

// event stamps and appends an event, charging per-event overhead.
func (r *recorder) event(kind trace.EvKind, region trace.RegionID, a, b int32, c int64) {
	oh := &r.m.Cfg.Overhead
	r.pendingInstr += oh.EventInstr
	if r.m.Cfg.Mode == core.ModeHwctr || r.m.Cfg.Mode == core.ModeHwComb {
		r.pendingInstr += oh.CounterReadInstr
	}
	r.pendingBytes += oh.EventBytes
	r.bufEvents++
	if oh.WSUpdateEvery > 0 && r.bufEvents >= oh.WSUpdateEvery {
		grow := float64(r.bufEvents) * oh.BufferBytesPerEvent
		if oh.BufferCapBytes > 0 && r.bufRegistered+grow > oh.BufferCapBytes {
			grow = oh.BufferCapBytes - r.bufRegistered
		}
		if grow > 0 {
			r.loc.M.AddWorkingSet(r.loc.Core, grow)
			r.bufRegistered += grow
		}
		r.bufEvents = 0
	}
	r.m.Trace.Record(r.locIx, trace.Event{
		Kind: kind, Time: r.clock.Stamp(), Region: region, A: a, B: b, C: c,
	})
}

// enter pushes a user or runtime region, recording the Enter event unless
// the region is filtered out.
func (r *recorder) enter(name string, role trace.Role) {
	if role == trace.RoleUser && r.m.Cfg.Filter != nil && !r.m.Cfg.Filter(name) {
		r.stack = append(r.stack, stackEntry{filtered: true})
		return
	}
	id, ok := r.regions[name]
	if !ok {
		if r.loc.Actor != nil {
			r.loc.Actor.Exclusive() // first sight: intern in the global table
		}
		id = r.m.Trace.Region(name, role)
		if r.regions == nil {
			r.regions = make(map[string]trace.RegionID)
		}
		r.regions[name] = id
	}
	r.stack = append(r.stack, stackEntry{region: id})
	r.names = append(r.names, name)
	r.event(trace.EvEnter, id, 0, 0, 0)
}

// callPath returns the location's current call path string.
func (r *recorder) callPath() string {
	return strings.Join(r.names, "/")
}

// exit pops the current region, recording the Exit event unless filtered.
func (r *recorder) exit() {
	if len(r.stack) == 0 {
		panic("measure: exit without matching enter")
	}
	top := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	if top.filtered {
		return
	}
	r.names = r.names[:len(r.names)-1]
	r.event(trace.EvExit, top.region, 0, 0, 0)
}

// ompCallCounts charges the constant per-OpenMP-call effort the lt_bb and
// lt_stmt models assign to external runtime calls (X and Y, paper §II-A).
func (r *recorder) ompCallCounts() {
	r.loc.Counts.BB += r.m.Cfg.XBBPerOmpCall
	r.loc.Counts.Stmt += r.m.Cfg.YStmtPerOmpCall
}

// flush turns accumulated instrumentation overhead into simulated time if
// it has grown past the batching threshold (or force is set).  The cost is
// executed uncounted: instrumentation work consumes time and bandwidth but
// is not application effort, so the logical clocks do not see it.
func (r *recorder) flush(force bool) {
	oh := &r.m.Cfg.Overhead
	if r.pendingInstr == 0 && r.pendingBytes == 0 {
		return
	}
	if !force && r.pendingInstr < oh.FlushThresholdInstr {
		return
	}
	instr, bytes := r.pendingInstr, r.pendingBytes
	r.pendingInstr, r.pendingBytes = 0, 0
	r.loc.M.Exec(r.loc.Actor, r.loc.Core, work.Cost{Instr: instr, Bytes: bytes}, r.loc.Noise)
}
