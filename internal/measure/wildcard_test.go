package measure

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/simmpi"
	"repro/internal/simomp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

// TestWildcardReceivesMakeLogicalTracesTimingDependent demonstrates the
// caveat of paper §II: "In programs relying on nondeterministic MPI
// semantics, such as wildcard receives, the happens-before relation is
// insufficient ... messages can be matched differently depending on the
// timing, therefore the event order and logical time stamps might vary
// between executions."  Two workers race to send to a wildcard receiver;
// under different noise seeds the match order flips, and with it the
// logical trace — the one situation where even a pure logical clock is
// not reproducible.
func TestWildcardReceivesMakeLogicalTracesTimingDependent(t *testing.T) {
	app := func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Collect both racing messages with wildcard receives.
			a := r.Recv(simmpi.AnySource, 0)
			b := r.Recv(simmpi.AnySource, 0)
			_ = a
			_ = b
		default:
			// The workers' compute times differ only by noise, so who
			// sends first is timing-dependent.
			r.Work(work.Cost{Instr: 2e7, Flops: 2e7, Stmt: 1e5, BB: 3e4})
			r.Send(0, 0, []float64{float64(r.Rank())}, 8)
		}
	}
	run := func(seed int64) []int32 {
		k := vtime.NewKernel()
		m := machine.New(k, machine.Jureca(1))
		place, err := machine.PlaceBlock(m, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nm := noise.NewModel(seed, noise.Params{CPUJitterRel: 0.2})
		w := simmpi.NewWorld(k, m, place, simmpi.DefaultConfig(), simomp.DefaultCosts(), nm)
		meas := New(DefaultConfig(core.ModeStmt))
		w.Launch(func(p *simmpi.Proc) {
			r := NewRank(meas, p)
			r.Begin()
			app(r)
			r.End()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var order []int32
		for _, e := range meas.Trace.Locs[0].Events {
			if e.Kind == trace.EvRecv {
				order = append(order, e.A)
			}
		}
		return order
	}
	// Find two seeds with opposite match orders.
	first := run(1)
	flipped := false
	for seed := int64(2); seed < 40 && !flipped; seed++ {
		if o := run(seed); o[0] != first[0] {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("wildcard match order never flipped across 40 seeds; nondeterminism not modelled")
	}
}
