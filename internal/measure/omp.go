package measure

import (
	"repro/internal/simomp"
	"repro/internal/trace"
	"repro/internal/work"
)

// teamWrap is the Opari2-analogue per-team instrumentation state: the
// piggyback rendezvous slots through which the logical clocks synchronise
// across threads at forks, barriers, critical sections and joins.
type teamWrap struct {
	rank    *Rank
	barPB   map[int32]uint64
	critPB  uint64
	forkSeq int32
	forkPB  uint64
	joinPB  uint64
}

// Thread is the application-facing handle for one OpenMP thread inside a
// parallel region.
type Thread struct {
	th   *simomp.Thread
	rec  *recorder // nil when unmeasured
	rank *Rank
}

// ID returns the OpenMP thread number.
func (t *Thread) ID() int { return t.th.ID }

// Count returns the team size.
func (t *Thread) Count() int { return t.th.Team.Size() }

// StaticChunk returns this thread's static-schedule share of n iterations.
func (t *Thread) StaticChunk(n int) (lo, hi int) { return t.th.StaticChunk(n) }

// Work executes a quantum of application work on this thread.
func (t *Thread) Work(c work.Cost) {
	if t.rec == nil {
		t.th.Loc.Work(c)
		return
	}
	t.rec.flush(false)
	t.th.Loc.WorkOverhead(c, t.rank.countingInstr(c))
}

// Enter opens a user region on this thread.
func (t *Thread) Enter(name string) {
	if t.rec != nil {
		t.rec.flush(false)
		t.rec.enter(name, trace.RoleUser)
	}
}

// Exit closes the current user region on this thread.
func (t *Thread) Exit() {
	if t.rec != nil {
		t.rec.exit()
	}
}

// Barrier is the measured OpenMP barrier.  Arrival and departure
// timestamps let the analyzer split waiting time from barrier overhead,
// and the piggyback rendezvous synchronises the logical clocks across the
// team (a barrier is communication).
func (t *Thread) Barrier() {
	if t.rec == nil {
		t.th.Barrier()
		return
	}
	rec := t.rec
	tw := t.rank.tw
	rec.ompCallCounts()
	rec.flush(false)
	rec.enter("!$omp ibarrier", trace.RoleOmpBarrier)
	seq := rec.barSeen
	rec.barSeen++
	rec.event(trace.EvBarrier, 0, int32(t.Count()), seq, 0)
	if pb := rec.clock.SendPB(); pb > tw.barPB[seq] {
		tw.barPB[seq] = pb
	}
	t.th.Barrier()
	rec.clock.RecvPB(tw.barPB[seq])
	rec.exit()
}

// Critical runs fn inside the measured critical section; the logical
// clock is handed from the previous owner to the next.
func (t *Thread) Critical(fn func()) {
	if t.rec == nil {
		t.th.Critical(fn)
		return
	}
	rec := t.rec
	tw := t.rank.tw
	rec.ompCallCounts()
	rec.flush(false)
	rec.enter("!$omp critical", trace.RoleOmpCritical)
	t.th.Critical(func() {
		rec.clock.RecvPB(tw.critPB)
		fn()
		if pb := rec.clock.SendPB(); pb > tw.critPB {
			tw.critPB = pb
		}
	})
	rec.exit()
}

// Single runs fn on the first arriving thread only, recording the
// executing thread's region.  It reports whether this thread ran fn.
func (t *Thread) Single(fn func()) bool {
	if t.rec == nil {
		return t.th.Single(fn)
	}
	rec := t.rec
	ran := t.th.Single(func() {
		rec.ompCallCounts()
		rec.enter("!$omp single", trace.RoleOmpMgmt)
		fn()
		rec.exit()
	})
	return ran
}

// Parallel runs body on every thread of the rank's team with an implicit
// barrier at the end (OpenMP semantics).  The master records fork/join
// events; every thread opens a per-thread parallel region so the analyzer
// sees the team's structure.
func (r *Rank) Parallel(name string, body func(t *Thread)) {
	if r.m == nil {
		r.P.Team.Parallel(func(th *simomp.Thread) {
			t := &Thread{th: th, rank: r}
			body(t)
			t.Barrier()
		})
		return
	}
	rec := r.rec
	tw := r.tw
	rec.flush(false)
	seq := tw.forkSeq
	tw.forkSeq++
	rec.ompCallCounts()
	rec.event(trace.EvFork, 0, int32(r.Threads()), seq, 0)
	tw.forkPB = rec.clock.SendPB()
	tw.joinPB = 0
	pname := "!$omp parallel " + name
	// Workers inherit the master's fork-time call path, the way Scalasca
	// roots a team's parallel region under the enclosing user code: each
	// worker opens one region named with the full prefix, whose joined
	// path string matches the master's chain.
	prefix := rec.callPath()
	// The master-side fork cost runs inside the raw Parallel call before
	// the master's body starts; bracket it with a management region so
	// the analyzer attributes it to "starting and ending parallel
	// regions" rather than to the enclosing user code.
	rec.enter("!$omp fork", trace.RoleOmpMgmt)
	r.P.Team.Parallel(func(th *simomp.Thread) {
		trec := r.recs[th.ID]
		t := &Thread{th: th, rec: trec, rank: r}
		if th.ID != 0 {
			trec.clock.RecvPB(tw.forkPB)
			if prefix != "" {
				trec.enter(prefix, trace.RoleUser)
			}
		} else {
			trec.exit() // close the fork region: the team is running
		}
		trec.ompCallCounts()
		trec.enter(pname, trace.RoleOmpParallel)
		body(t)
		t.Barrier()
		trec.exit()
		if th.ID != 0 {
			if prefix != "" {
				trec.exit()
			}
			if pb := trec.clock.SendPB(); pb > tw.joinPB {
				tw.joinPB = pb
			}
			// Workers must leave the region with no pending overhead:
			// outside parallel regions their actors are parked, and
			// nothing may execute work on them from other goroutines.
			trec.flush(true)
		} else {
			// The join wait and join cost follow on the master inside
			// the raw call; bracket them like the fork.
			trec.enter("!$omp join", trace.RoleOmpMgmt)
		}
	})
	rec.exit() // close the join region
	rec.clock.RecvPB(tw.joinPB)
	rec.ompCallCounts()
	rec.event(trace.EvJoin, 0, int32(r.Threads()), seq, 0)
}

// ParallelFor is the measured fused "omp parallel for": each thread runs
// body on its static chunk inside a loop region, then waits at the
// implicit barrier.
func (r *Rank) ParallelFor(name string, n int, body func(lo, hi int, t *Thread)) {
	lname := "!$omp for " + name
	r.Parallel(name, func(t *Thread) {
		lo, hi := t.StaticChunk(n)
		if t.rec != nil {
			t.rec.ompCallCounts()
			t.rec.enter(lname, trace.RoleOmpLoop)
		}
		body(lo, hi, t)
		if t.rec != nil {
			t.rec.exit()
		}
	})
}
