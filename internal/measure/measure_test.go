package measure

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/simmpi"
	"repro/internal/simomp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

// runJob executes app on ranks x threads; returns the trace (nil if mode
// is "" = uninstrumented) and the job's wall time.
func runJob(t *testing.T, ranks, threads int, mode core.Mode, seed int64, np noise.Params, app func(r *Rank)) (*trace.Trace, float64) {
	t.Helper()
	k := vtime.NewKernel()
	m := machine.New(k, machine.Jureca(1+(ranks*threads-1)/128))
	place, err := machine.PlaceBlock(m, ranks, threads)
	if err != nil {
		t.Fatal(err)
	}
	var nm *noise.Model
	if np != (noise.Params{}) {
		nm = noise.NewModel(seed, np)
	}
	w := simmpi.NewWorld(k, m, place, simmpi.DefaultConfig(), simomp.DefaultCosts(), nm)
	var meas *Measurement
	if mode != "" {
		meas = New(DefaultConfig(mode))
	}
	w.Launch(func(p *simmpi.Proc) {
		r := NewRank(meas, p)
		r.Begin()
		app(r)
		r.End()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if meas == nil {
		return nil, k.Now()
	}
	return meas.Trace, k.Now()
}

// miniApp is a small hybrid workload exercising every wrapper.
func miniApp(r *Rank) {
	r.Region("setup", func() {
		r.Work(work.Cost{Instr: 1e6, BB: 200, Stmt: 800, Bytes: 1e5, Flops: 1e5})
	})
	r.ParallelFor("stream", 64, func(lo, hi int, th *Thread) {
		th.Work(work.PerIter(work.Cost{Instr: 5e4, BB: 10, Stmt: 30, Flops: 1e4, Bytes: 8e3}, float64(hi-lo)))
	})
	// Neighbour exchange.
	n := r.Size()
	me := r.Rank()
	right, left := (me+1)%n, (me+n-1)%n
	reqs := []*simmpi.Request{r.Irecv(left, 1)}
	r.Isend(right, 1, []float64{float64(me)}, 8)
	r.Waitall(reqs)
	sum := r.Allreduce([]float64{1}, simmpi.OpSum)
	if sum[0] != float64(n) {
		panic("allreduce wrong")
	}
	r.Region("solve", func() {
		r.Work(work.Cost{Instr: 2e6, BB: 500, Stmt: 2000, Bytes: 5e5, Flops: 1e6})
	})
	r.Barrier()
}

func TestUninstrumentedRunsClean(t *testing.T) {
	tr, wall := runJob(t, 4, 2, "", 1, noise.Params{}, miniApp)
	if tr != nil {
		t.Fatal("uninstrumented run produced a trace")
	}
	if wall <= 0 {
		t.Fatal("no time passed")
	}
}

func TestTraceStructure(t *testing.T) {
	tr, _ := runJob(t, 4, 2, core.ModeLt1, 1, noise.Params{}, miniApp)
	if len(tr.Locs) != 8 {
		t.Fatalf("locations = %d, want 8", len(tr.Locs))
	}
	// Every location's Enter/Exit events must balance and timestamps must
	// be non-decreasing (strictly increasing for logical clocks).
	for _, l := range tr.Locs {
		depth := 0
		var prev uint64
		for _, e := range l.Events {
			if e.Time <= prev {
				t.Fatalf("loc r%dt%d: non-increasing logical stamps %d after %d",
					l.Rank, l.Thread, e.Time, prev)
			}
			prev = e.Time
			switch e.Kind {
			case trace.EvEnter:
				depth++
			case trace.EvExit:
				depth--
				if depth < 0 {
					t.Fatalf("loc r%dt%d: unbalanced exit", l.Rank, l.Thread)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("loc r%dt%d: %d unclosed regions", l.Rank, l.Thread, depth)
		}
	}
	// Master locations must have fork/join pairs; workers must have
	// parallel-region enters.
	master := tr.Locs[0]
	forks, joins := 0, 0
	for _, e := range master.Events {
		switch e.Kind {
		case trace.EvFork:
			forks++
		case trace.EvJoin:
			joins++
		}
	}
	if forks != 1 || joins != 1 {
		t.Fatalf("master has %d forks, %d joins; want 1 each", forks, joins)
	}
}

func TestLamportClockConditionAcrossMessages(t *testing.T) {
	tr, _ := runJob(t, 4, 1, core.ModeLt1, 1, noise.Params{}, miniApp)
	// Collect send stamps by (src, dst, tag) FIFO and check each recv
	// stamp exceeds the matching send stamp.
	type key struct{ src, dst, tag int32 }
	sends := map[key][]uint64{}
	for _, l := range tr.Locs {
		if l.Thread != 0 {
			continue
		}
		for _, e := range l.Events {
			if e.Kind == trace.EvSend {
				k := key{int32(l.Rank), e.A, e.B}
				sends[k] = append(sends[k], e.Time)
			}
		}
	}
	for _, l := range tr.Locs {
		if l.Thread != 0 {
			continue
		}
		for _, e := range l.Events {
			if e.Kind == trace.EvRecv {
				k := key{e.A, int32(l.Rank), e.B}
				q := sends[k]
				if len(q) == 0 {
					t.Fatalf("recv without send: %+v", e)
				}
				sendTS := q[0]
				sends[k] = q[1:]
				if e.Time <= sendTS {
					t.Fatalf("clock condition violated: recv %d <= send %d", e.Time, sendTS)
				}
			}
		}
	}
}

func TestLogicalTraceIdenticalUnderNoise(t *testing.T) {
	run := func(seed int64) *trace.Trace {
		tr, _ := runJob(t, 4, 2, core.ModeStmt, seed, noise.Cluster(), miniApp)
		return tr
	}
	a, b := run(1), run(999) // different noise seeds
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for li := range a.Locs {
		for ei := range a.Locs[li].Events {
			if a.Locs[li].Events[ei] != b.Locs[li].Events[ei] {
				t.Fatalf("logical trace differs under different noise at loc %d ev %d:\n%+v\n%+v",
					li, ei, a.Locs[li].Events[ei], b.Locs[li].Events[ei])
			}
		}
	}
}

func TestTSCTraceVariesUnderNoise(t *testing.T) {
	run := func(seed int64) *trace.Trace {
		tr, _ := runJob(t, 4, 2, core.ModeTSC, seed, noise.Cluster(), miniApp)
		return tr
	}
	a, b := run(1), run(999)
	same := true
	for li := range a.Locs {
		ae, be := a.Locs[li].Events, b.Locs[li].Events
		if len(ae) != len(be) {
			same = false
			break
		}
		for ei := range ae {
			if ae[ei].Time != be[ei].Time {
				same = false
			}
		}
	}
	if same {
		t.Fatal("tsc timestamps identical across different noise seeds")
	}
}

func TestFilterSuppressesRegions(t *testing.T) {
	app := func(r *Rank) {
		r.Region("noisy_helper", func() {
			r.Work(work.Cost{Instr: 1e5})
		})
		r.Region("solve", func() {
			r.Work(work.Cost{Instr: 1e5})
		})
	}
	cfg := DefaultConfig(core.ModeLt1)
	cfg.Filter = FilterOut("noisy_helper")
	k := vtime.NewKernel()
	m := machine.New(k, machine.Jureca(1))
	place, _ := machine.PlaceBlock(m, 1, 1)
	w := simmpi.NewWorld(k, m, place, simmpi.DefaultConfig(), simomp.DefaultCosts(), nil)
	meas := New(cfg)
	w.Launch(func(p *simmpi.Proc) {
		r := NewRank(meas, p)
		r.Begin()
		app(r)
		r.End()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, reg := range meas.Trace.Regions {
		if reg.Name == "noisy_helper" {
			t.Fatal("filtered region appears in trace")
		}
	}
	found := false
	for _, reg := range meas.Trace.Regions {
		if reg.Name == "solve" {
			found = true
		}
	}
	if !found {
		t.Fatal("unfiltered region missing from trace")
	}
}

func TestInstrumentationAddsOverhead(t *testing.T) {
	_, ref := runJob(t, 2, 2, "", 1, noise.Params{}, miniApp)
	_, ins := runJob(t, 2, 2, core.ModeBB, 1, noise.Params{}, miniApp)
	if ins <= ref {
		t.Fatalf("instrumented run (%g) not slower than reference (%g)", ins, ref)
	}
}

func TestHeavyModesCostMoreThanLight(t *testing.T) {
	_, lt1 := runJob(t, 2, 2, core.ModeLt1, 1, noise.Params{}, miniApp)
	_, bb := runJob(t, 2, 2, core.ModeBB, 1, noise.Params{}, miniApp)
	if bb <= lt1 {
		t.Fatalf("lt_bb (%g) should cost more than lt_1 (%g)", bb, lt1)
	}
}

func TestOmpCallChargesXandY(t *testing.T) {
	// A parallel region must add X basic blocks / Y statements per OpenMP
	// call to the counts, so lt_bb/lt_stmt see effort in the runtime.
	tr, _ := runJob(t, 1, 2, core.ModeBB, 1, noise.Params{}, func(r *Rank) {
		r.ParallelFor("empty", 2, func(lo, hi int, th *Thread) {})
	})
	// Find a barrier enter/exit pair on the master and check the stamp
	// gap reflects the X=100 charge (plus per-event +1s).
	master := tr.Locs[0]
	var barEnter, barExit uint64
	barID := trace.RegionID(-1)
	for i, reg := range tr.Regions {
		if reg.Role == trace.RoleOmpBarrier {
			barID = trace.RegionID(i)
		}
	}
	if barID < 0 {
		t.Fatal("no barrier region in trace")
	}
	for _, e := range master.Events {
		if e.Region == barID && e.Kind == trace.EvEnter && barEnter == 0 {
			barEnter = e.Time
		}
		if e.Region == barID && e.Kind == trace.EvExit && barExit == 0 && barEnter != 0 {
			barExit = e.Time
		}
	}
	if barEnter == 0 || barExit == 0 {
		t.Fatal("barrier events missing")
	}
	// The enter stamp includes the X charge from the barrier's
	// ompCallCounts; the gap to the previous event must exceed X.
	if barExit-barEnter > 1000 {
		t.Fatalf("implausible barrier gap %d", barExit-barEnter)
	}
}

func TestWaitallRecordsRecvEvents(t *testing.T) {
	tr, _ := runJob(t, 2, 1, core.ModeLt1, 1, noise.Params{}, func(r *Rank) {
		other := 1 - r.Rank()
		reqs := []*simmpi.Request{r.Irecv(other, 3)}
		r.Isend(other, 3, []float64{1}, 8)
		r.Waitall(reqs)
	})
	for _, l := range tr.Locs {
		recvs := 0
		inWaitall := false
		for _, e := range l.Events {
			switch e.Kind {
			case trace.EvEnter:
				if tr.Regions[e.Region].Name == "MPI_Waitall" {
					inWaitall = true
				}
			case trace.EvExit:
				if tr.Regions[e.Region].Name == "MPI_Waitall" {
					inWaitall = false
				}
			case trace.EvRecv:
				recvs++
				if !inWaitall {
					t.Fatal("recv event outside MPI_Waitall region")
				}
			}
		}
		if recvs != 1 {
			t.Fatalf("rank %d has %d recv events, want 1", l.Rank, recvs)
		}
	}
}

func TestSpinWaitVisibleToHwctrOnly(t *testing.T) {
	// Rank 1 is late; rank 0 waits in Recv.  Under lt_hwctr the waiting
	// shows as a large stamp gap inside MPI_Recv; under lt_stmt it is
	// only the per-event +1s.
	app := func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 0)
		} else {
			r.Work(work.Cost{Instr: 50e6, Flops: 50e6}) // ~ tens of ms
			r.Send(0, 0, []float64{1}, 8)
		}
	}
	gap := func(mode core.Mode) uint64 {
		tr, _ := runJob(t, 2, 1, mode, 1, noise.Params{}, app)
		l := tr.Locs[0]
		var enter uint64
		for _, e := range l.Events {
			if e.Kind == trace.EvEnter && tr.Regions[e.Region].Name == "MPI_Recv" {
				enter = e.Time
			}
			if e.Kind == trace.EvExit && tr.Regions[e.Region].Name == "MPI_Recv" {
				return e.Time - enter
			}
		}
		t.Fatal("no MPI_Recv region found")
		return 0
	}
	hw := gap(core.ModeHwctr)
	st := gap(core.ModeStmt)
	if hw < 1000*st {
		t.Fatalf("spin wait not visible to lt_hwctr: hwctr gap %d vs stmt gap %d", hw, st)
	}
}
