package measure

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simomp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

// runJobCfg runs a one-thread-per-rank job with an explicit measurement
// config and returns the trace.
func runJobCfg(t *testing.T, ranks int, cfg Config, app func(r *Rank)) *trace.Trace {
	t.Helper()
	k := vtime.NewKernel()
	m := machine.New(k, machine.Jureca(1))
	place, err := machine.PlaceBlock(m, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := simmpi.NewWorld(k, m, place, simmpi.DefaultConfig(), simomp.DefaultCosts(), nil)
	meas := New(cfg)
	w.Launch(func(p *simmpi.Proc) {
		r := NewRank(meas, p)
		r.Begin()
		app(r)
		r.End()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return meas.Trace
}

// workCostBig is a heavily counted quantum for clock-skew tests.
func workCostBig() work.Cost {
	return work.Cost{Instr: 5e7, Flops: 5e7, BB: 1e6, Stmt: 4e6, Calls: 1e4, Bytes: 1e6}
}
