package measure

import "repro/internal/core"

// Filter decides which user regions are instrumented, playing the role of
// Score-P filter files (paper §V-A: "we specified filters to keep the
// overhead for tsc measurements reasonably small").  It returns true if
// the region should be measured.  A nil Filter measures everything.
// Filtered regions produce no events and no overhead; their time is
// attributed to the enclosing call path, as with Score-P.
type Filter func(region string) bool

// FilterOut builds a filter that excludes exactly the named regions.
func FilterOut(names ...string) Filter {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	return func(region string) bool { return !drop[region] }
}

// Overhead models the run-time cost of the measurement system itself.
// The logical clocks are insensitive to these costs by construction —
// instrumentation instructions are executed but not counted as
// application effort — yet the costs still consume real (virtual) time
// and cache, which is what distorts tsc measurements (paper §V-A, §V-C5).
type Overhead struct {
	// EventInstr is the instruction cost of recording one event.
	EventInstr float64
	// CounterReadInstr is the extra per-event cost of reading the
	// hardware counter (lt_hwctr mode only).
	CounterReadInstr float64
	// CallInstr is the amortised fast-path cost per instrumented
	// function call a work quantum stands for (Cost.Calls).
	CallInstr float64
	// CallCounterInstr is the per-call counter read-out cost in
	// lt_hwctr mode (an rdpmc-style read at every call boundary).
	CallCounterInstr float64
	// EventBytes is the memory traffic of writing one event record.
	EventBytes float64
	// BufferBytesPerEvent is the resident trace-buffer growth per event;
	// it is added to the location's NUMA-domain working set and competes
	// with the application for L3 (TeaLeaf's misleading tsc overhead).
	BufferBytesPerEvent float64
	// BufferCapBytes caps the per-location buffer working set, modelling
	// Score-P's fixed preallocated trace memory.
	BufferCapBytes float64
	// WSUpdateEvery batches working-set updates (events).
	WSUpdateEvery int
	// PerBBInstr is the per-executed-basic-block counting cost of the
	// LLVM plugin in lt_bb mode.
	PerBBInstr float64
	// PerStmtInstr is the per-statement counting cost in lt_stmt mode.
	PerStmtInstr float64
	// PerIterInstr is the per-loop-iteration counting cost of the Opari2
	// instrumentation in lt_loop mode.
	PerIterInstr float64
	// FlushThresholdInstr batches pending instrumentation work into one
	// simulated quantum once it exceeds this many instructions.
	FlushThresholdInstr float64
}

// DefaultOverhead returns instrumentation costs in the regime the paper
// reports: tsc/lt_1/lt_loop cheap, lt_bb/lt_stmt expensive in call-dense
// code, lt_hwctr dominated by counter reads.
func DefaultOverhead() Overhead {
	return Overhead{
		EventInstr:       370,
		CounterReadInstr: 2600,
		CallInstr:        25,
		CallCounterInstr: 1300, // rdpmc-style read pair per call, ~160 ns
		EventBytes:       64,
		// The simulated jobs run trimmed iteration counts; the buffer
		// growth per event is scaled up so that the cache pressure of a
		// full-length production trace (hundreds of MB per location, as
		// on the paper's TeaLeaf runs) is represented faithfully.
		BufferBytesPerEvent: 2000,
		BufferCapBytes:      320e3,
		WSUpdateEvery:       64,
		PerBBInstr:          4.0,
		PerStmtInstr:        1.15,
		PerIterInstr:        0.4,
		FlushThresholdInstr: 20000,
	}
}

// Config selects the timer mode and instrumentation behaviour of one
// measurement run.
type Config struct {
	// Mode is the timer to use for timestamps.
	Mode core.Mode
	// Filter selects instrumented user regions; nil measures all.
	Filter Filter
	// Overhead models the measurement system's own costs.
	Overhead Overhead
	// XBBPerOmpCall is the constant number of basic blocks charged per
	// OpenMP runtime call in lt_bb mode (paper §II-A, X=100).
	XBBPerOmpCall float64
	// YStmtPerOmpCall is the statement analogue (Y=4300).
	YStmtPerOmpCall float64
	// DisablePiggyback turns off the logical-clock synchronisation
	// messages (step 2 of the paper's Algorithm 1).  Ablation only: the
	// resulting traces violate the clock condition across messages,
	// which internal/vclock.Validate demonstrates.
	DisablePiggyback bool
}

// DefaultConfig returns the paper's constants for the given mode.
func DefaultConfig(mode core.Mode) Config {
	return Config{
		Mode:            mode,
		Overhead:        DefaultOverhead(),
		XBBPerOmpCall:   100,
		YStmtPerOmpCall: 4300,
	}
}
