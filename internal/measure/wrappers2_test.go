package measure

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/simmpi"
	"repro/internal/simomp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

func TestMeasuredExtendedCollectives(t *testing.T) {
	tr, _ := runJob(t, 4, 1, core.ModeLt1, 1, noise.Params{}, func(r *Rank) {
		red := r.Reduce(0, []float64{float64(r.Rank() + 1)}, simmpi.OpSum)
		if r.Rank() == 0 && red[0] != 10 {
			t.Errorf("reduce = %v", red)
		}
		g := r.Gather(1, []float64{float64(r.Rank())})
		if r.Rank() == 1 && (len(g) != 4 || g[3][0] != 3) {
			t.Errorf("gather = %v", g)
		}
		var sdata [][]float64
		if r.Rank() == 2 {
			sdata = [][]float64{{0}, {1}, {2}, {3}}
		}
		sc := r.Scatter(2, sdata)
		if sc[0] != float64(r.Rank()) {
			t.Errorf("scatter = %v", sc)
		}
		pre := r.Scan([]float64{1}, simmpi.OpSum)
		if pre[0] != float64(r.Rank()+1) {
			t.Errorf("scan = %v", pre)
		}
	})
	// Each collective must appear as a region with a CollEnd record.
	wantRegions := map[string]bool{
		"MPI_Reduce": false, "MPI_Gather": false, "MPI_Scatter": false, "MPI_Scan": false,
	}
	for _, reg := range tr.Regions {
		if _, ok := wantRegions[reg.Name]; ok {
			wantRegions[reg.Name] = true
			if reg.Role != trace.RoleMPIColl {
				t.Errorf("%s has role %v", reg.Name, reg.Role)
			}
		}
	}
	for name, seen := range wantRegions {
		if !seen {
			t.Errorf("region %s missing from trace", name)
		}
	}
}

func TestMeasuredSendrecv(t *testing.T) {
	tr, _ := runJob(t, 2, 1, core.ModeStmt, 1, noise.Params{}, func(r *Rank) {
		other := 1 - r.Rank()
		msg := r.Sendrecv(other, 1, []float64{float64(r.Rank())}, 8, other, 1)
		if msg.Data[0] != float64(other) {
			t.Errorf("sendrecv got %v", msg.Data)
		}
	})
	// Each rank has exactly one send and one recv event, inside the
	// MPI_Sendrecv region, and the clock condition holds.
	for _, l := range tr.Locs {
		var sends, recvs int
		for _, e := range l.Events {
			switch e.Kind {
			case trace.EvSend:
				sends++
			case trace.EvRecv:
				recvs++
			}
		}
		if sends != 1 || recvs != 1 {
			t.Fatalf("rank %d: %d sends, %d recvs", l.Rank, sends, recvs)
		}
	}
}

func TestFilterReducesOverheadAndTraceSize(t *testing.T) {
	// The paper keeps tsc overhead small with filter files (§V-A).  A
	// call-dense helper region, filtered out, must stop costing events.
	app := func(r *Rank) {
		for i := 0; i < 3000; i++ {
			r.Region("tiny_helper", func() {
				r.Work(work.Cost{Instr: 1e4, Flops: 1e4})
			})
		}
	}
	k := vtime.NewKernel()
	_ = k
	run := func(filter Filter) (wall float64, events int) {
		cfg := DefaultConfig(core.ModeTSC)
		cfg.Filter = filter
		kk := vtime.NewKernel()
		m := machine.New(kk, machine.Jureca(1))
		place, err := machine.PlaceBlock(m, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		w := simmpi.NewWorld(kk, m, place, simmpi.DefaultConfig(), simomp.DefaultCosts(), nil)
		meas := New(cfg)
		w.Launch(func(p *simmpi.Proc) {
			r := NewRank(meas, p)
			r.Begin()
			app(r)
			r.End()
		})
		if err := kk.Run(); err != nil {
			t.Fatal(err)
		}
		return kk.Now(), meas.Trace.NumEvents()
	}
	fullWall, fullEvents := run(nil)
	filtWall, filtEvents := run(FilterOut("tiny_helper"))
	if filtEvents >= fullEvents/10 {
		t.Fatalf("filter left %d of %d events", filtEvents, fullEvents)
	}
	if filtWall >= fullWall {
		t.Fatalf("filtered run (%g) not faster than unfiltered (%g)", filtWall, fullWall)
	}
}

func TestPiggybackAblationBreaksClockCondition(t *testing.T) {
	// With synchronisation disabled, a late sender's stamp exceeds the
	// receiver's recv stamp: the Lamport condition fails.  This is the
	// ablation justifying Algorithm 1 step 2.
	app := func(r *Rank) {
		if r.Rank() == 0 {
			// Plenty of counted work before sending.
			r.Region("busy", func() {
				r.Work(workCostBig())
			})
			r.Send(1, 0, []float64{1}, 8)
		} else {
			m := r.Recv(0, 0)
			_ = m
		}
	}
	run := func(disable bool) (sendTS, recvTS uint64) {
		cfg := DefaultConfig(core.ModeStmt)
		cfg.DisablePiggyback = disable
		tr := runJobCfg(t, 2, cfg, app)
		for _, l := range tr.Locs {
			for _, e := range l.Events {
				switch e.Kind {
				case trace.EvSend:
					sendTS = e.Time
				case trace.EvRecv:
					recvTS = e.Time
				}
			}
		}
		return
	}
	s, r := run(true)
	if s < r {
		t.Fatalf("ablation ineffective: send %d < recv %d", s, r)
	}
	s, r = run(false)
	if s >= r {
		t.Fatalf("piggyback failed to restore the clock condition: send %d >= recv %d", s, r)
	}
}
