// Package repro's top-level benchmarks regenerate each table and figure
// of the paper's evaluation section (run with `go test -bench=. -benchmem`).
// They use the Quick problem sizes and two repetitions so the whole suite
// stays laptop-sized; `go run ./cmd/ltreport` produces the full-size
// report.  Micro-benchmarks for the simulation substrate follow at the
// bottom.
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiment"
)

// benchOpts are the study options used by the table/figure benchmarks.
func benchOpts() experiment.StudyOptions {
	return experiment.StudyOptions{Reps: 2, BaseSeed: 1}
}

func study(b *testing.B, name string) *experiment.Study {
	b.Helper()
	spec, err := experiment.SpecByName(name, experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	st, err := experiment.RunStudy(spec, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTableI regenerates the overhead table (paper Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TableI(io.Discard, study(b, "MiniFE-2"), study(b, "LULESH-1"), study(b, "TeaLeaf-2"))
	}
}

// BenchmarkTableII regenerates the TeaLeaf run-time table (paper Table II).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TableII(io.Discard, []*experiment.Study{
			study(b, "TeaLeaf-1"), study(b, "TeaLeaf-2"), study(b, "TeaLeaf-3"), study(b, "TeaLeaf-4"),
		})
	}
}

// BenchmarkFig2 regenerates the MiniFE-2 structure-generation run times.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig2(io.Discard, study(b, "MiniFE-2"))
	}
}

// BenchmarkFig3 regenerates the MiniFE/LULESH Jaccard comparison.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.FigJaccard(io.Discard, "FIG 3", []*experiment.Study{
			study(b, "MiniFE-1"), study(b, "MiniFE-2"), study(b, "LULESH-1"), study(b, "LULESH-2"),
		})
	}
}

// BenchmarkFig4 regenerates the TeaLeaf Jaccard comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.FigJaccard(io.Discard, "FIG 4", []*experiment.Study{
			study(b, "TeaLeaf-1"), study(b, "TeaLeaf-2"), study(b, "TeaLeaf-3"), study(b, "TeaLeaf-4"),
		})
	}
}

// BenchmarkFig5and6 regenerates the MiniFE call-path breakdowns (comp and
// wait_nxn, paper Figs. 5 and 6 share the same two studies).
func BenchmarkFig5and6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m1, m2 := study(b, "MiniFE-1"), study(b, "MiniFE-2")
		experiment.Fig5(io.Discard, m1, m2)
		experiment.Fig6(io.Discard, m1, m2)
	}
}

// BenchmarkFig7 regenerates the MiniFE-2 paradigm breakdown.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig7(io.Discard, study(b, "MiniFE-2"))
	}
}

// BenchmarkFig8and9 regenerates the LULESH-1 paradigm breakdown and the
// comp/delay-cost call-path figures.
func BenchmarkFig8and9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l1 := study(b, "LULESH-1")
		experiment.Fig8(io.Discard, l1)
		experiment.Fig9(io.Discard, l1)
	}
}

// BenchmarkStudySequential and BenchmarkStudyPooled4 run the same
// MiniFE-1 quick study with one worker and with four, so the pool's
// speedup can be read off a single `-bench 'BenchmarkStudy'` run (the
// results themselves are byte-identical — see
// internal/experiment/pool_test.go).
func BenchmarkStudySequential(b *testing.B) {
	benchStudy(b, 1)
}

func BenchmarkStudyPooled4(b *testing.B) {
	benchStudy(b, 4)
}

func benchStudy(b *testing.B, workers int) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunStudy(spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----
//
// The workload bodies live in internal/bench, shared with cmd/ltbench so
// that `go test -bench` and the committed BENCH_<label>.json trajectory
// files measure identical code.

func benchWorkload(b *testing.B, name string) {
	b.Helper()
	ins, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ins.Op(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelSharedResource measures the virtual-time kernel's
// scheduling throughput with contending actions.
func BenchmarkKernelSharedResource(b *testing.B) {
	benchWorkload(b, "KernelSharedResource")
}

// BenchmarkMachineContention measures the fluid model under NUMA-domain
// contention (16 streams on one domain).
func BenchmarkMachineContention(b *testing.B) {
	benchWorkload(b, "MachineContention")
}

// BenchmarkTraceRecord measures the measurement system's per-event
// recording hot path.
func BenchmarkTraceRecord(b *testing.B) {
	benchWorkload(b, "TraceRecord")
}

// BenchmarkAnalyzer measures trace-analysis throughput on a LULESH-1
// quick trace.
func BenchmarkAnalyzer(b *testing.B) {
	benchWorkload(b, "Analyzer")
}

// BenchmarkTraceRoundTrip measures binary trace serialisation.
func BenchmarkTraceRoundTrip(b *testing.B) {
	benchWorkload(b, "TraceRoundTrip")
}
