// Package repro's top-level benchmarks regenerate each table and figure
// of the paper's evaluation section (run with `go test -bench=. -benchmem`).
// They use the Quick problem sizes and two repetitions so the whole suite
// stays laptop-sized; `go run ./cmd/ltreport` produces the full-size
// report.  Micro-benchmarks for the simulation substrate follow at the
// bottom.
package repro

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/scalasca"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

// benchOpts are the study options used by the table/figure benchmarks.
func benchOpts() experiment.StudyOptions {
	return experiment.StudyOptions{Reps: 2, BaseSeed: 1}
}

func study(b *testing.B, name string) *experiment.Study {
	b.Helper()
	spec, err := experiment.SpecByName(name, experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	st, err := experiment.RunStudy(spec, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTableI regenerates the overhead table (paper Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TableI(io.Discard, study(b, "MiniFE-2"), study(b, "LULESH-1"), study(b, "TeaLeaf-2"))
	}
}

// BenchmarkTableII regenerates the TeaLeaf run-time table (paper Table II).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TableII(io.Discard, []*experiment.Study{
			study(b, "TeaLeaf-1"), study(b, "TeaLeaf-2"), study(b, "TeaLeaf-3"), study(b, "TeaLeaf-4"),
		})
	}
}

// BenchmarkFig2 regenerates the MiniFE-2 structure-generation run times.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig2(io.Discard, study(b, "MiniFE-2"))
	}
}

// BenchmarkFig3 regenerates the MiniFE/LULESH Jaccard comparison.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.FigJaccard(io.Discard, "FIG 3", []*experiment.Study{
			study(b, "MiniFE-1"), study(b, "MiniFE-2"), study(b, "LULESH-1"), study(b, "LULESH-2"),
		})
	}
}

// BenchmarkFig4 regenerates the TeaLeaf Jaccard comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.FigJaccard(io.Discard, "FIG 4", []*experiment.Study{
			study(b, "TeaLeaf-1"), study(b, "TeaLeaf-2"), study(b, "TeaLeaf-3"), study(b, "TeaLeaf-4"),
		})
	}
}

// BenchmarkFig5and6 regenerates the MiniFE call-path breakdowns (comp and
// wait_nxn, paper Figs. 5 and 6 share the same two studies).
func BenchmarkFig5and6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m1, m2 := study(b, "MiniFE-1"), study(b, "MiniFE-2")
		experiment.Fig5(io.Discard, m1, m2)
		experiment.Fig6(io.Discard, m1, m2)
	}
}

// BenchmarkFig7 regenerates the MiniFE-2 paradigm breakdown.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Fig7(io.Discard, study(b, "MiniFE-2"))
	}
}

// BenchmarkFig8and9 regenerates the LULESH-1 paradigm breakdown and the
// comp/delay-cost call-path figures.
func BenchmarkFig8and9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l1 := study(b, "LULESH-1")
		experiment.Fig8(io.Discard, l1)
		experiment.Fig9(io.Discard, l1)
	}
}

// BenchmarkStudySequential and BenchmarkStudyPooled4 run the same
// MiniFE-1 quick study with one worker and with four, so the pool's
// speedup can be read off a single `-bench 'BenchmarkStudy'` run (the
// results themselves are byte-identical — see
// internal/experiment/pool_test.go).
func BenchmarkStudySequential(b *testing.B) {
	benchStudy(b, 1)
}

func BenchmarkStudyPooled4(b *testing.B) {
	benchStudy(b, 4)
}

func benchStudy(b *testing.B, workers int) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunStudy(spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkKernelSharedResource measures the virtual-time kernel's
// scheduling throughput with contending actions.
func BenchmarkKernelSharedResource(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := vtime.NewKernel()
		bw := k.NewResource("bw", 100)
		for a := 0; a < 16; a++ {
			k.Spawn("s", func(ac *vtime.Actor) {
				for j := 0; j < 100; j++ {
					ac.Execute(vtime.Action{Work: 1, Res: bw, ResPerUnit: 1})
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzer measures trace-analysis throughput on a LULESH-1
// quick trace (events/op reported via b.N scaling).
func BenchmarkAnalyzer(b *testing.B) {
	spec, err := experiment.SpecByName("LULESH-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiment.Run(spec, core.ModeStmt, 1, noise.Cluster(), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scalasca.Analyze(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRoundTrip measures binary trace serialisation.
func BenchmarkTraceRoundTrip(b *testing.B) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiment.Run(spec, core.ModeLt1, 1, noise.Params{}, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := res.Trace.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineContention measures the fluid model under NUMA-domain
// contention (16 streams on one domain).
func BenchmarkMachineContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := vtime.NewKernel()
		m := machine.New(k, machine.Jureca(1))
		m.AddWorkingSet(0, 1e9)
		for c := 0; c < 16; c++ {
			core := machine.CoreID(c)
			k.Spawn("t", func(a *vtime.Actor) {
				for j := 0; j < 50; j++ {
					m.Exec(a, core, benchCost, nil)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

var benchCost = work.Cost{Instr: 1e6, Flops: 1e6, Bytes: 1e6}
