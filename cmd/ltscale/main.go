// Command ltscale runs the preliminary scaling studies of §IV-B: each
// mini-app without instrumentation at a sweep of rank/thread splits,
// reporting run time, speedup and parallel efficiency.  The paper uses
// these studies to pick the interesting configurations for detailed
// analysis (for example, that TeaLeaf with 2 ranks x 64 threads is the
// optimal split of one node).
//
// Usage:
//
//	ltscale                     # all three mini-apps
//	ltscale -app TeaLeaf -reps 5
//	ltscale -j 4 -cache ~/.ltcache
//	ltscale -progress -metrics  # live ETA and a metrics dump, on stderr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/runcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltscale: ")
	app := flag.String("app", "", "restrict to one app: MiniFE, LULESH or TeaLeaf")
	reps := flag.Int("reps", 3, "repetitions per point")
	seed := flag.Int64("seed", 1, "noise seed")
	quick := flag.Bool("quick", false, "shrink the problems")
	workers := flag.Int("j", 0, "parallel simulations (0 = all CPUs); results are identical for any value")
	cacheDir := flag.String("cache", "", "serve repetitions from a run cache in this directory")
	progress := flag.Bool("progress", false, "report live sweep progress with ETA on stderr")
	metrics := flag.Bool("metrics", false, "dump simulator metrics to stderr after the run")
	flag.Parse()

	var cache *runcache.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = runcache.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var prog *obs.Progress
	if *progress {
		// Wall-clock time feeds only the stderr progress display, never
		// the simulation itself.
		prog = obs.NewProgress(os.Stderr, "ltscale", time.Now) //detlint:allow wallclock
	}

	sweeps := []struct {
		name   string
		base   string
		points [][2]int
	}{
		{"MiniFE (node splits)", "MiniFE-1", [][2]int{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 4}, {8, 16}}},
		{"LULESH (rank cubes)", "LULESH-1", [][2]int{{1, 4}, {8, 4}, {27, 4}, {64, 4}}},
		{"TeaLeaf (one-node splits)", "TeaLeaf-2", [][2]int{{1, 128}, {2, 64}, {4, 32}, {8, 16}, {16, 8}, {32, 4}, {64, 2}, {128, 1}}},
	}
	np := noise.Cluster()
	for _, s := range sweeps {
		if *app != "" && s.base[:len(*app)] != *app {
			continue
		}
		spec, err := experiment.SpecByName(s.base, experiment.Options{Quick: *quick})
		if err != nil {
			log.Fatal(err)
		}
		res, err := experiment.RunScaling(spec, s.points, experiment.ScalingOptions{
			Reps: *reps, Seed: *seed, Noise: np, Workers: *workers, Cache: cache,
			Metrics: reg, Progress: prog,
		})
		if err != nil {
			log.Fatal(err)
		}
		experiment.RenderScaling(os.Stdout, s.name, res.Points)
		for _, d := range res.Dropped {
			fmt.Printf("dropped: rep %d (seed %d): %s\n", d.Rep, d.Seed, d.Err)
		}
		os.Stdout.WriteString("\n")
	}
	if cache != nil {
		hits, misses := cache.Stats()
		log.Printf("run cache %s: %d hits, %d misses", cache.Dir(), hits, misses)
	}
	if reg != nil {
		if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
			log.Print(err)
		}
	}
}
