// Command ltverify checks the reproduction against the paper's
// qualitative claims, one by one, and prints PASS/FAIL per claim.  It is
// the executable form of EXPERIMENTS.md: each claim names the paper
// section it comes from, runs the relevant configurations at quick scale,
// and tests the *shape* (sign, ordering, dominance) rather than absolute
// numbers.
//
// Usage:
//
//	ltverify            # all claims (~2 minutes)
//	ltverify -reps 5
//	ltverify -j 4 -cache ~/.ltcache   # parallel, cached repetitions
//	ltverify -progress -metrics       # live ETA and a metrics dump, on stderr
//
// Exit status 1 if any claim fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/runcache"
	"repro/internal/scalasca"
)

type claim struct {
	section string
	text    string
	check   func(s map[string]*experiment.Study) (string, bool)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltverify: ")
	reps := flag.Int("reps", 3, "repetitions per study")
	workers := flag.Int("j", 0, "parallel simulations (0 = all CPUs); results are identical for any value")
	cacheDir := flag.String("cache", "", "serve repetitions from a run cache in this directory")
	progress := flag.Bool("progress", false, "report live study progress with ETA on stderr")
	metrics := flag.Bool("metrics", false, "dump simulator metrics to stderr after the claims")
	flag.Parse()

	opts := experiment.StudyOptions{Reps: *reps, Workers: *workers, VerifyTraces: true}
	if *cacheDir != "" {
		cache, err := runcache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cache = cache
	}
	if *progress {
		// Wall-clock time feeds only the stderr progress display, never
		// the simulation itself.
		opts.Progress = obs.NewProgress(os.Stderr, "ltverify", time.Now) //detlint:allow wallclock
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}

	needed := []string{"MiniFE-1", "MiniFE-2", "LULESH-1", "LULESH-2", "TeaLeaf-2", "TeaLeaf-4"}
	studies := make(map[string]*experiment.Study)
	for _, name := range needed {
		spec, err := experiment.SpecByName(name, experiment.Options{Quick: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("running %s...\n", name)
		st, err := experiment.RunStudy(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		studies[name] = st
	}
	if opts.Cache != nil {
		hits, misses := opts.Cache.Stats()
		log.Printf("run cache %s: %d hits, %d misses", opts.Cache.Dir(), hits, misses)
	}
	// Dump before the claim checks so the snapshot appears even when a
	// failing claim ends the process with a non-zero status.
	if reg != nil {
		if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
			log.Print(err)
		}
	}
	fmt.Println()

	failures := 0
	for _, c := range claims() {
		detail, ok := c.check(studies)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-8s %s\n         %s\n", status, c.section, c.text, detail)
	}
	fmt.Printf("\n%d claims checked, %d failed\n", len(claims()), failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func claims() []claim {
	return []claim{
		{"§II", "every recorded trace satisfies the checked causality invariants", func(s map[string]*experiment.Study) (string, bool) {
			// The paper's replay correctness rests on the Lamport clock
			// condition; tracecheck verifies it (plus matching, ordering
			// and nesting invariants) for every completed repetition of
			// every study in the grid (see internal/tracecheck).
			verified, violations := 0, 0
			first := ""
			names := make([]string, 0, len(s))
			for name := range s {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				for _, tc := range s[name].TraceChecks {
					verified++
					if n := tc.Report.NumViolations(); n > 0 {
						violations += n
						if first == "" {
							first = fmt.Sprintf("%s/%s rep %d", name, tc.Mode, tc.Rep)
						}
					}
				}
			}
			if violations > 0 {
				return fmt.Sprintf("%d violations across %d traces (first: %s)", violations, verified, first), false
			}
			return fmt.Sprintf("%d traces verified, zero violations", verified), verified > 0
		}},
		{"§V-A", "light clocks show negative overhead in MiniFE init", func(s map[string]*experiment.Study) (string, bool) {
			oh := s["MiniFE-2"].PhaseOverhead(core.ModeTSC, "structgen")
			return fmt.Sprintf("tsc structgen overhead %.1f%%", oh), oh < -5
		}},
		{"§V-A", "counting clocks roughly double MiniFE init", func(s map[string]*experiment.Study) (string, bool) {
			bb := s["MiniFE-2"].PhaseOverhead(core.ModeBB, "structgen")
			st := s["MiniFE-2"].PhaseOverhead(core.ModeStmt, "structgen")
			return fmt.Sprintf("lt_bb %.1f%%, lt_stmt %.1f%%", bb, st), bb > 50 && st > 50
		}},
		{"§V-A", "no mode has significant overhead in the CG solve phase", func(s map[string]*experiment.Study) (string, bool) {
			worst := 0.0
			for _, m := range core.AllModes() {
				if oh := s["MiniFE-2"].PhaseOverhead(m, "solve"); oh > worst {
					worst = oh
				}
			}
			return fmt.Sprintf("worst solve overhead %.1f%%", worst), worst < 10
		}},
		{"§V-A", "TeaLeaf instrumentation overhead is large for every clock", func(s map[string]*experiment.Study) (string, bool) {
			min := 1e9
			for _, m := range core.AllModes() {
				if oh := s["TeaLeaf-2"].Overhead(m); oh < min {
					min = oh
				}
			}
			return fmt.Sprintf("smallest TeaLeaf-2 overhead %.1f%%", min), min > 10
		}},
		{"§V-B", "lt_1 scores lowest against tsc", func(s map[string]*experiment.Study) (string, bool) {
			for _, cfg := range []string{"MiniFE-1", "MiniFE-2", "LULESH-1", "LULESH-2"} {
				j1 := s[cfg].JaccardVsTsc(core.ModeLt1)
				for _, m := range []core.Mode{core.ModeBB, core.ModeStmt, core.ModeHwctr} {
					if s[cfg].JaccardVsTsc(m) <= j1 {
						return fmt.Sprintf("%s: %s <= lt_1", cfg, m), false
					}
				}
			}
			return "lt_1 lowest in all four configurations", true
		}},
		{"§V-B", "pure logical analyses repeat bit-for-bit across noisy runs", func(s map[string]*experiment.Study) (string, bool) {
			for _, cfg := range []string{"MiniFE-1", "LULESH-1", "TeaLeaf-2"} {
				for _, m := range []core.Mode{core.ModeLt1, core.ModeLoop, core.ModeBB, core.ModeStmt} {
					if j := s[cfg].MinRepJaccard(m); j != 1 {
						return fmt.Sprintf("%s/%s rep-to-rep J = %g", cfg, m, j), false
					}
				}
			}
			return "rep-to-rep J = 1.000 exactly", true
		}},
		{"§V-B", "tsc analyses vary run to run", func(s map[string]*experiment.Study) (string, bool) {
			j := s["MiniFE-1"].MinRepJaccard(core.ModeTSC)
			return fmt.Sprintf("MiniFE-1 tsc rep-to-rep J = %.3f", j), j < 1 && j > 0.8
		}},
		{"§V-C1", "lt_loop over-weights MiniFE's cheap vector loops", func(s map[string]*experiment.Study) (string, bool) {
			v := groupShare(s["MiniFE-1"], core.ModeLoop, scalasca.MComp, "waxpby", "dot")
			return fmt.Sprintf("waxpby+dot = %.1f%%M under lt_loop", v), v > 50
		}},
		{"§V-C1", "lt_1 over-weights the call-dense assembly", func(s map[string]*experiment.Study) (string, bool) {
			v := groupShare(s["MiniFE-1"], core.ModeLt1, scalasca.MComp, "assemble", "generate_matrix_structure", "operator()")
			return fmt.Sprintf("assembly = %.1f%%M under lt_1", v), v > 60
		}},
		{"§V-C2", "logical clocks cannot see MiniFE-2's memory contention", func(s map[string]*experiment.Study) (string, bool) {
			// Identical lt_stmt comp distributions in MiniFE-1 and MiniFE-2.
			a := s["MiniFE-1"].MeanProfile(core.ModeStmt).PathPercents(scalasca.MComp)
			b := s["MiniFE-2"].MeanProfile(core.ModeStmt).PathPercents(scalasca.MComp)
			for path, v := range a {
				if d := v - b[path]; d > 1.5 || d < -1.5 {
					return fmt.Sprintf("lt_stmt share of %q differs: %.1f vs %.1f", path, v, b[path]), false
				}
			}
			return "lt_stmt comp distribution identical across configurations", true
		}},
		{"§V-C2", "serial regions surface as idle threads in MiniFE-2", func(s map[string]*experiment.Study) (string, bool) {
			idle := s["MiniFE-2"].MeanProfile(core.ModeTSC).PercentOfTime(scalasca.MIdleThreads)
			return fmt.Sprintf("tsc idle threads %.1f%%T", idle), idle > 25
		}},
		{"§V-C3", "delay costs blame the imbalanced material update, not the MPI call", func(s map[string]*experiment.Study) (string, bool) {
			for _, m := range []core.Mode{core.ModeTSC, core.ModeStmt} {
				v := groupShare(s["LULESH-1"], m, scalasca.MDelayNxN, "EvalEOSForElems", "ApplyMaterialProperties")
				if v < 50 {
					return fmt.Sprintf("%s: material delay share %.1f%%M", m, v), false
				}
			}
			return "material update dominates delay costs under tsc and lt_stmt", true
		}},
		{"§V-C3", "only lt_hwctr among logical clocks shows effort inside MPI", func(s map[string]*experiment.Study) (string, bool) {
			hw := s["LULESH-1"].MeanProfile(core.ModeHwctr).PercentOfTime(scalasca.MMPI)
			bb := s["LULESH-1"].MeanProfile(core.ModeBB).PercentOfTime(scalasca.MMPI)
			return fmt.Sprintf("mpi %%T: lt_hwctr %.2f vs lt_bb %.2f", hw, bb), hw > 1.5*bb
		}},
		{"§V-C4", "LULESH-2's NUMA late senders invisible to counting clocks", func(s map[string]*experiment.Study) (string, bool) {
			tsc := s["LULESH-2"].MeanProfile(core.ModeTSC).PercentOfTime(scalasca.MLateSender)
			st := s["LULESH-2"].MeanProfile(core.ModeStmt).PercentOfTime(scalasca.MLateSender)
			return fmt.Sprintf("latesender %%T: tsc %.2f vs lt_stmt %.2f", tsc, st), tsc > 0.05 && st < tsc/4
		}},
		{"§V-C5", "TeaLeaf-4's all-to-all waits: tsc and lt_hwctr see them, lt_bb/lt_stmt do not", func(s map[string]*experiment.Study) (string, bool) {
			tsc := s["TeaLeaf-4"].MeanProfile(core.ModeTSC).PercentOfTime(scalasca.MWaitNxN)
			hw := s["TeaLeaf-4"].MeanProfile(core.ModeHwctr).PercentOfTime(scalasca.MWaitNxN)
			st := s["TeaLeaf-4"].MeanProfile(core.ModeStmt).PercentOfTime(scalasca.MWaitNxN)
			return fmt.Sprintf("wait_nxn %%T: tsc %.2f, lt_hwctr %.2f, lt_stmt %.2f", tsc, hw, st),
				tsc > 0.1 && hw > st
		}},
	}
}

// groupShare sums the %M of call paths containing any fragment.
func groupShare(st *experiment.Study, mode core.Mode, metric string, frags ...string) float64 {
	p := st.MeanProfile(mode)
	if p == nil {
		return 0
	}
	var v float64
	for path, pct := range p.PathPercents(metric) {
		for _, f := range frags {
			if strings.Contains(path, f) {
				v += pct
				break
			}
		}
	}
	return v
}
