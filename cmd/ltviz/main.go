// Command ltviz renders simulator traces as Chrome trace-event /
// Perfetto JSON for ui.perfetto.dev or chrome://tracing.
//
// It has two sources.  Given trace files, it converts each one:
//
//	ltviz run.ltrc                     # JSON to stdout
//	ltviz -o run.json run.ltrc         # JSON to a file
//	ltviz -range 1000:2000 run.ltrc    # only events with vtime in [1000, 2000]
//
// -range answers virtual-time window queries.  On chunked (version-2)
// trace files it consults the trailing chunk index and decompresses
// only the chunks overlapping the window — an O(log n) seek rather than
// a full-file read; monolithic version-1 files are filtered after a
// full read.
//
// Given -spec, it runs the configuration in-process and exports the
// resulting trace together with the run's machine timeline — fault
// injections as instant events and the fluid model's resource
// capacities as counter tracks — which no on-disk trace carries:
//
//	ltviz -spec MiniFE-1 -mode lt_stmt -o minife.json
//	ltviz -spec MiniFE-1 -mode tsc -faults "membw:node=0,at=0.001,dur=0.005,factor=0.2" -o fault.json
//
// With -front (requires -spec and -faults), ltviz additionally runs the
// same configuration *without* the faults, feeds the pair through the
// delay-propagation analyzer, and overlays the delay front on the
// machine track: one instant mark per rank at the moment the injected
// delay first exceeded the detection threshold there.  On logical-clock
// traces whose runs are byte-identical the overlay is empty — the
// front is invisible to that clock, which is the point:
//
//	ltviz -spec Ring-16 -mode tsc -faults "oneoff:rank=8,at=0.01,delay=0.002" -front -o front.json
//
// Timestamps are trace clock ticks scaled to the trace-event format's
// microseconds: real time for tsc traces, logical ticks (one per
// microsecond) for the logical modes — so the machine timeline, which
// is in virtual seconds, lines up with the slices only on tsc traces.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/obs/perfetto"
	"repro/internal/propagation"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltviz: ")
	out := flag.String("o", "", "output file (default stdout; with several inputs, a per-input .json path)")
	spec := flag.String("spec", "", "run this configuration in-process instead of reading trace files (see ltrun -list)")
	mode := flag.String("mode", "lt_stmt", "timer mode for -spec runs")
	seed := flag.Int64("seed", 1, "noise seed for -spec runs")
	quick := flag.Bool("quick", false, "shrink the -spec problem")
	noNoise := flag.Bool("no-noise", false, "disable all noise sources in -spec runs")
	faultSpec := flag.String("faults", "", `fault plan for -spec runs, e.g. "oneoff:rank=2,at=0.01,delay=0.005"`)
	front := flag.Bool("front", false, "overlay the delay front from a matching baseline run (needs -spec and -faults)")
	rng := flag.String("range", "", `export only events with vtime in "min:max" (chunked traces seek via the index)`)
	flag.Parse()

	minT, maxT, haveRange, err := parseRange(*rng)
	if err != nil {
		log.Fatal(err)
	}
	if haveRange && *spec != "" {
		log.Fatal("-range applies to trace files, not -spec runs")
	}

	if *front && (*spec == "" || *faultSpec == "") {
		log.Fatal("-front needs both -spec and -faults: the overlay diffs a faulted run against its baseline")
	}
	if *spec != "" {
		if flag.NArg() > 0 {
			log.Fatal("-spec and trace-file arguments are mutually exclusive")
		}
		tr, tl, err := runSpec(*spec, *mode, *seed, *quick, *noNoise, *faultSpec, *front)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeJSON(*out, tr, tl); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("no input: pass trace files or -spec (see -h)")
	}
	if flag.NArg() > 1 && *out != "" {
		log.Fatal("-o takes a single trace file; omit it to write per-input .json files")
	}
	for _, path := range flag.Args() {
		st, err := openStream(path, minT, maxT, haveRange)
		if err != nil {
			log.Fatal(err)
		}
		dst := *out
		if flag.NArg() > 1 {
			dst = path + ".json"
		}
		if err := writeStreamJSON(dst, st, nil); err != nil {
			log.Fatal(err)
		}
		if dst != "" {
			if haveRange {
				// A ranged chunked stream reports the overlapping chunks'
				// totals, an upper bound on what the window exports.
				fmt.Fprintf(os.Stderr, "ltviz: %s -> %s (<= %d events in range)\n", path, dst, st.NumEvents())
			} else {
				fmt.Fprintf(os.Stderr, "ltviz: %s -> %s (%d events)\n", path, dst, st.NumEvents())
			}
		}
	}
}

// parseRange parses the -range "min:max" virtual-time window.
func parseRange(s string) (minT, maxT uint64, ok bool, err error) {
	if s == "" {
		return 0, 0, false, nil
	}
	var lo, hi uint64
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, false, fmt.Errorf(`-range wants "min:max" (vtime ticks): %v`, err)
	}
	if hi < lo {
		return 0, 0, false, fmt.Errorf("-range: max %d below min %d", hi, lo)
	}
	return lo, hi, true, nil
}

// openStream opens a trace file as a stream, restricted to the vtime
// window when one was given.  Chunked files serve the window from the
// chunk index; version-1 files fall back to a filtered full read.
func openStream(path string, minT, maxT uint64, bounded bool) (*trace.Stream, error) {
	cf, cerr := trace.OpenChunkFile(path)
	if cerr == nil {
		if bounded {
			return cf.Range(minT, maxT), nil
		}
		return cf.Stream(), nil
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bounded {
		for li := range tr.Locs {
			kept := tr.Locs[li].Events[:0]
			for _, e := range tr.Locs[li].Events {
				if e.Time >= minT && e.Time <= maxT {
					kept = append(kept, e)
				}
			}
			tr.Locs[li].Events = kept
		}
	}
	return trace.StreamTrace(tr), nil
}

// runSpec executes one configuration in-process with a timeline
// attached and returns the trace plus the machine annotations.  With
// front set it also runs the fault-free baseline and overlays the
// delay-propagation analysis as timeline marks.
func runSpec(name, mode string, seed int64, quick, noNoise bool, faultSpec string, front bool) (*trace.Trace, *obs.Timeline, error) {
	sp, err := experiment.SpecByName(name, experiment.Options{Quick: quick})
	if err != nil {
		return nil, nil, err
	}
	if mode == "" {
		return nil, nil, fmt.Errorf("-spec needs an instrumented -mode (a reference run records no trace)")
	}
	cfg := measure.DefaultConfig(core.Mode(mode))
	np := noise.Cluster()
	if noNoise {
		np = noise.Params{}
	}
	var plan *faults.Plan
	if faultSpec != "" {
		p, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return nil, nil, err
		}
		plan = &p
	}
	tl := &obs.Timeline{}
	res, err := experiment.RunWithOptions(sp, experiment.RunOptions{
		Cfg: &cfg, Seed: seed, Noise: np, Faults: plan, Timeline: tl,
	})
	if err != nil {
		return nil, nil, err
	}
	if front {
		if err := overlayFront(tl, sp, cfg, seed, np, res.Trace); err != nil {
			return nil, nil, err
		}
	}
	return res.Trace, tl, nil
}

// overlayFront re-runs the configuration without the fault plan, diffs
// the baseline against the faulted trace through the propagation
// analyzer, and marks each rank's delay-front crossing on the timeline.
// Marks are in virtual seconds, so they land on the timeline axis the
// machine track already uses; FrontTime is in baseline clock ticks and
// scales by the clock's tick length.  A clock that never saw the fault
// contributes a single "front invisible" mark instead.
func overlayFront(tl *obs.Timeline, sp experiment.Spec, cfg measure.Config, seed int64, np noise.Params, faulted *trace.Trace) error {
	base, err := experiment.RunWithOptions(sp, experiment.RunOptions{
		Cfg: &cfg, Seed: seed, Noise: np,
	})
	if err != nil {
		return fmt.Errorf("front baseline: %w", err)
	}
	a, err := propagation.Analyze(base.Trace, faulted, propagation.Options{})
	if err != nil {
		return fmt.Errorf("front analysis: %w", err)
	}
	scale := perfetto.TickSeconds(a.Clock)
	if !a.Observed {
		tl.AddMark(0, "front invisible",
			fmt.Sprintf("clock %s shows no delta above %.4g ticks", a.Clock, a.ThresholdTicks))
		return nil
	}
	for _, rd := range a.Ranks {
		if rd.FrontTime < 0 {
			continue
		}
		tl.AddMark(rd.FrontTime*scale,
			fmt.Sprintf("delay front rank %d", rd.Rank),
			fmt.Sprintf("iter %d, peak %.4g ticks, %s", rd.FrontIter, rd.Peak, rd.Class))
	}
	return nil
}

// writeJSON exports to the given path, or stdout when path is empty.
func writeJSON(path string, tr *trace.Trace, tl *obs.Timeline) error {
	return writeStreamJSON(path, trace.StreamTrace(tr), tl)
}

func writeStreamJSON(path string, st *trace.Stream, tl *obs.Timeline) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return perfetto.ExportStream(w, st, tl)
}
