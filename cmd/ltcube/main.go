// Command ltcube inspects analysis profiles written by ltrun — a text-mode
// stand-in for the Cube browser of the paper's workflow.
//
// Usage:
//
//	ltcube profile.cube.json                      # metric tree (%T view)
//	ltcube -metric comp profile.cube.json         # call paths by %M
//	ltcube -metric time -locs profile.cube.json   # per-location totals
//	ltcube -compare other.cube.json profile.cube.json  # Jaccard score
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/cube"
	"repro/internal/jaccard"
)

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcube: ")
	metric := flag.String("metric", "", "show call paths of this metric (metric-selection-percent view)")
	locs := flag.Bool("locs", false, "show per-location totals of -metric")
	csv := flag.Bool("csv", false, "export -metric as CSV (path x location)")
	imbalance := flag.Bool("imbalance", false, "show per-path imbalance (max/mean over locations) of -metric")
	limit := flag.Int("limit", 20, "call paths to show")
	compare := flag.String("compare", "", "second profile; print the generalized Jaccard score J(M,C)")
	diff := flag.Int("diff", 0, "with -compare: show the N largest (metric, path) disagreements")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("need exactly one profile file")
	}
	prof := read(flag.Arg(0))
	if *compare != "" {
		other := read(*compare)
		a, b := prof.MCMap(), other.MCMap()
		fmt.Printf("J(M,C) = %.4f  (%s vs %s)\n", jaccard.Score(a, b), prof.Clock, other.Clock)
		if *diff > 0 {
			type d struct {
				key  string
				a, b float64
			}
			var ds []d
			seen := map[string]bool{}
			for k, av := range a {
				ds = append(ds, d{k, av, b[k]})
				seen[k] = true
			}
			for k, bv := range b {
				if !seen[k] {
					ds = append(ds, d{k, 0, bv})
				}
			}
			sort.Slice(ds, func(i, j int) bool {
				return abs(ds[i].a-ds[i].b) > abs(ds[j].a-ds[j].b)
			})
			fmt.Printf("largest disagreements (%%T): %-10s %-10s\n", prof.Clock, other.Clock)
			for i := 0; i < *diff && i < len(ds); i++ {
				fmt.Printf("  %7.2f vs %7.2f  %s\n", ds[i].a, ds[i].b, ds[i].key)
			}
		}
		return
	}
	switch {
	case *metric != "" && *csv:
		if err := prof.WriteCSV(os.Stdout, *metric); err != nil {
			log.Fatal(err)
		}
	case *metric != "" && *imbalance:
		for _, s := range prof.Imbalance(*metric, 0) {
			fmt.Printf("%8.2fx  mean %12.4g  %s\n", s.Ratio, s.Mean, s.Path)
		}
	case *metric != "" && *locs:
		prof.RenderLocations(os.Stdout, *metric)
	case *metric != "":
		prof.RenderCallTree(os.Stdout, *metric, *limit)
	default:
		fmt.Print(prof.Summary())
		fmt.Println()
		prof.RenderMetricTree(os.Stdout)
	}
}

func read(path string) *cube.Profile {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p, err := cube.Read(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return p
}
