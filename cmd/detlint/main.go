// Command detlint runs the repo's static-analysis suites over the
// whole module, multichecker-style: findings print as file:line:col
// diagnostics (or JSON with -json), and any finding fails the run.
//
//	detlint                      # determinism suite (syntactic)
//	detlint -suite parlint       # parallel-kernel contract (interprocedural)
//	detlint -suite all -json     # everything, machine-readable
//
// Suites:
//
//	detlint  wallclock/globalrand/maporder, syntactic per-package pass
//	parlint  stagedmut/exclusive-before/pinpair/globalmut plus the
//	         interprocedural taint upgrades of the detlint analyzers
//	         (see internal/lint/parlint)
//	all      both suites plus the unusedallow meta-check, which reports
//	         //detlint:allow directives that no longer suppress anything
//
// Suppress a deliberate exception with a "//detlint:allow <analyzer>:
// why" comment on the offending line or the line above.
//
// -quick runs the full "all" suite under a wall-clock budget
// (-budget, default 60s) and fails if analysis alone exceeds it — the
// CI smoke that keeps the module-wide loader from silently blowing up
// CI time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/detlint"
	"repro/internal/lint/parlint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detlint: ")
	var (
		suite   = flag.String("suite", "detlint", "analyzer suite: detlint, parlint, or all")
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		verbose = flag.Bool("v", false, "report module and analyzer progress on stderr")
		quick   = flag.Bool("quick", false, "run the full suite under a wall-clock budget (implies -suite all)")
		budget  = flag.Duration("budget", 60*time.Second, "wall-clock budget for -quick")
	)
	flag.Parse()

	modDir, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	if *quick {
		*suite = "all"
	}

	var analyzers []*lint.Analyzer
	switch *suite {
	case "detlint":
		analyzers = detlint.Analyzers()
	case "parlint":
		analyzers = parlint.Analyzers()
	case "all":
		analyzers = append(analyzers, detlint.Analyzers()...)
		analyzers = append(analyzers, parlint.Analyzers()...)
		analyzers = append(analyzers, lint.UnusedAllow)
	default:
		log.Fatalf("unknown suite %q (want detlint, parlint, or all)", *suite)
	}

	start := time.Now() //detlint:allow wallclock: -quick budget measurement
	if *verbose {
		fmt.Fprintf(os.Stderr, "loading module at %s\n", modDir)
	}
	m, err := lint.LoadModule(modDir)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "running %s\n", a.Name)
		}
	}
	diags, err := lint.RunModuleAnalyzers(m, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start) //detlint:allow wallclock: -quick budget measurement
	lint.RelativizePaths(diags, modDir)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *quick {
		fmt.Fprintf(os.Stderr, "detlint: suite all over %d packages in %v (budget %v)\n",
			len(m.Packages), elapsed.Round(time.Millisecond), *budget)
		if elapsed > *budget {
			log.Fatalf("-quick budget exceeded: %v > %v", elapsed, *budget)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
