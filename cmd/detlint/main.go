// Command detlint runs the repo's determinism lint suite (see
// internal/lint/detlint) over Go packages, multichecker-style: every
// analyzer runs on every package, findings print as file:line:col
// diagnostics, and any finding fails the run.
//
//	detlint ./...
//	detlint ./internal/cube ./internal/scalasca
//
// Suppress a deliberate exception with a "//detlint:allow <analyzer>"
// comment on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/detlint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detlint: ")
	verbose := flag.Bool("v", false, "list packages as they are checked")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	modDir, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		log.Fatal(err)
	}

	var dirs []string
	for _, arg := range args {
		if strings.HasSuffix(arg, "/...") {
			root := strings.TrimSuffix(arg, "/...")
			if root == "." || root == "" {
				root = modDir
			}
			expanded, err := lint.ModuleDirs(root)
			if err != nil {
				log.Fatal(err)
			}
			dirs = append(dirs, expanded...)
		} else {
			dirs = append(dirs, arg)
		}
	}

	analyzers := detlint.Analyzers()
	failed := false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s\n", pkg.Path)
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
