// Command lthybrid runs one benchmark configuration twice — once with the
// physical clock and once with a logical clock — and classifies every
// wait state as intrinsic (algorithmic: fix the code) or extrinsic
// (environmental: fix the placement or the system).  This implements the
// combined physical+logical analysis the paper proposes as future work
// (§VI-B).
//
// Usage:
//
//	lthybrid -config LULESH-2                 # NUMA waits: extrinsic
//	lthybrid -config MiniFE-1 -logical lt_bb  # imbalance waits: intrinsic
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/hybrid"
	"repro/internal/noise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lthybrid: ")
	config := flag.String("config", "MiniFE-1", "configuration name (see ltrun -list)")
	logical := flag.String("logical", "lt_stmt", "logical timer mode to pair with tsc")
	seed := flag.Int64("seed", 1, "noise seed")
	quick := flag.Bool("quick", false, "shrink the problem")
	minPct := flag.Float64("min", 0.1, "ignore findings below this %T")
	limit := flag.Int("limit", 20, "findings to print")
	flag.Parse()

	mode := core.Mode(*logical)
	if mode == core.ModeTSC {
		log.Fatal("-logical must be a logical mode")
	}
	spec, err := experiment.SpecByName(*config, experiment.Options{Quick: *quick})
	if err != nil {
		log.Fatal(err)
	}
	np := noise.Cluster()
	phys, err := experiment.Run(spec, core.ModeTSC, *seed, np, true)
	if err != nil {
		log.Fatal(err)
	}
	logi, err := experiment.Run(spec, mode, *seed, np, true)
	if err != nil {
		log.Fatal(err)
	}
	rep := hybrid.Compare(phys.Profile, logi.Profile, nil, *minPct)
	rep.Render(os.Stdout, *limit)
}
