// Command ltreport regenerates the paper's tables and figures.
//
// Usage:
//
//	ltreport                 # everything (Table I, II, Figs 2-9)
//	ltreport -quick          # smaller grids / fewer iterations
//	ltreport -reps 3         # fewer repetitions
//	ltreport -table 1        # only Table I
//	ltreport -fig 9          # only Figure 9
//	ltreport -j 4            # at most 4 parallel simulations
//	ltreport -cache ~/.ltcache             # reuse cached repetitions
//	ltreport -fault-study MiniFE-1         # fault-resilience table
//	ltreport -table 1 -cpuprofile cpu.pprof  # profile the hot path
//	ltreport -progress -metrics      # live ETA and a metrics dump, on stderr
//
// Neither -progress nor -metrics perturbs the tables: both write to
// stderr only, and the simulation never reads what they record.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/profiling"
	"repro/internal/runcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltreport: ")
	quick := flag.Bool("quick", false, "shrink grids and iteration counts")
	reps := flag.Int("reps", 5, "repetitions for timing and noisy modes")
	seed := flag.Int64("seed", 1, "base noise seed")
	table := flag.Int("table", 0, "regenerate only this table (1 or 2)")
	fig := flag.Int("fig", 0, "regenerate only this figure (2-9)")
	workers := flag.Int("j", 0, "parallel simulations (0 = all CPUs); results are identical for any value")
	kernelPar := flag.Int("kernel-par", 1,
		"kernel worker goroutines inside each simulation (1 = sequential; results are byte-identical)")
	cacheDir := flag.String("cache", "", "serve repetitions from a run cache in this directory")
	faultCfg := flag.String("fault-study", "", "run the fault-resilience study on this configuration and exit")
	faultSpec := flag.String("faults", "", "fault plan for -fault-study (default: auto-sized one-off delay)")
	progress := flag.Bool("progress", false, "report live study progress with ETA on stderr")
	metrics := flag.Bool("metrics", false, "dump simulator metrics to stderr after the run")
	liveAddr := flag.String("live", "",
		"serve the study observatory (/healthz, /metrics, /progress) on this address")
	prof := profiling.AddFlags()
	flag.Parse()
	prof.Start()
	defer prof.Stop()

	opts := experiment.StudyOptions{Reps: *reps, BaseSeed: *seed, Workers: *workers, KernelWorkers: *kernelPar}
	if *progress {
		// Wall-clock time feeds only the stderr progress display, never
		// the simulation itself.
		opts.Progress = obs.NewProgress(os.Stderr, "ltreport", time.Now) //detlint:allow wallclock
	}
	if *metrics {
		reg := obs.NewRegistry()
		opts.Metrics = reg
		defer func() {
			if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
				log.Print(err)
			}
		}()
	}
	if *liveAddr != "" {
		// The observatory serves whatever is being collected; make sure
		// something is.
		if opts.Metrics == nil {
			opts.Metrics = obs.NewRegistry()
		}
		if opts.Progress == nil {
			opts.Progress = obs.NewProgress(os.Stderr, "ltreport", time.Now) //detlint:allow wallclock
		}
		srv, err := live.Start(*liveAddr, live.Options{
			Registry: opts.Metrics,
			Progress: opts.Progress,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("live observatory on http://%s", srv.Addr())
	}
	if *cacheDir != "" {
		cache, err := runcache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cache = cache
		defer func() {
			hits, misses := cache.Stats()
			log.Printf("run cache %s: %d hits, %d misses", cache.Dir(), hits, misses)
		}()
	}
	specOpts := experiment.Options{Quick: *quick}
	w := os.Stdout

	if *faultCfg != "" {
		spec, err := experiment.SpecByName(*faultCfg, specOpts)
		if err != nil {
			log.Fatal(err)
		}
		var plan faults.Plan
		if *faultSpec != "" {
			plan, err = faults.ParseSpec(*faultSpec)
		} else {
			plan, err = experiment.DefaultPlanFor(spec, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "running fault study on %s...\n", spec.Name)
		fs, err := experiment.RunFaultStudy(spec, opts, plan)
		if err != nil {
			log.Fatal(err)
		}
		experiment.FaultReport(w, fs)
		return
	}

	if *table == 0 && *fig == 0 {
		if err := experiment.FullReport(w, opts, specOpts); err != nil {
			log.Fatal(err)
		}
		return
	}

	study := func(name string) *experiment.Study {
		spec, err := experiment.SpecByName(name, specOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "running %s...\n", name)
		st, err := experiment.RunStudy(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	switch {
	case *table == 1:
		experiment.TableI(w, study("MiniFE-2"), study("LULESH-1"), study("TeaLeaf-2"))
	case *table == 2:
		experiment.TableII(w, []*experiment.Study{
			study("TeaLeaf-1"), study("TeaLeaf-2"), study("TeaLeaf-3"), study("TeaLeaf-4"),
		})
	case *fig == 2:
		experiment.Fig2(w, study("MiniFE-2"))
	case *fig == 3:
		experiment.FigJaccard(w, "FIG 3 (MiniFE, LULESH)", []*experiment.Study{
			study("MiniFE-1"), study("MiniFE-2"), study("LULESH-1"), study("LULESH-2"),
		})
	case *fig == 4:
		experiment.FigJaccard(w, "FIG 4 (TeaLeaf)", []*experiment.Study{
			study("TeaLeaf-1"), study("TeaLeaf-2"), study("TeaLeaf-3"), study("TeaLeaf-4"),
		})
	case *fig == 5:
		experiment.Fig5(w, study("MiniFE-1"), study("MiniFE-2"))
	case *fig == 6:
		experiment.Fig6(w, study("MiniFE-1"), study("MiniFE-2"))
	case *fig == 7:
		experiment.Fig7(w, study("MiniFE-2"))
	case *fig == 8:
		experiment.Fig8(w, study("LULESH-1"))
	case *fig == 9:
		experiment.Fig9(w, study("LULESH-1"))
	default:
		log.Fatalf("nothing to do: table=%d fig=%d", *table, *fig)
	}
}
