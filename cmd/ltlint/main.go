// Command ltlint verifies trace invariants: it reconstructs the
// happens-before relation of a recorded trace with vector clocks and
// checks the Lamport clock condition, per-location monotonicity,
// send/recv matching, collective and barrier consistency, fork/join
// nesting and piggyback synchronisation (see internal/tracecheck).
//
// It either reads binary LTRC trace files or runs a benchmark spec
// in-process across clock modes:
//
//	ltlint trace1.ltrc trace2.ltrc
//	ltlint -spec MiniFE-1 -quick -mode all
//	ltlint -spec LULESH-2 -quick -mode lt_stmt,lt_hwctr -json
//
// Exit status is 1 when any trace fails verification.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/noise"
	"repro/internal/trace"
	"repro/internal/tracecheck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltlint: ")
	specName := flag.String("spec", "", "run this benchmark spec in-process instead of reading trace files")
	modeFlag := flag.String("mode", "all", "clock modes for -spec: 'all' or a comma-separated list")
	quick := flag.Bool("quick", false, "with -spec: shrink the problem for a fast run")
	seed := flag.Int64("seed", 1, "with -spec: simulation seed")
	withNoise := flag.Bool("noise", false, "with -spec: enable the cluster noise model")
	jsonOut := flag.Bool("json", false, "emit one JSON report per trace instead of text")
	limit := flag.Int("limit", 20, "violations to print per trace (text output)")
	flag.Parse()

	var failed bool
	switch {
	case *specName != "":
		if flag.NArg() != 0 {
			log.Fatal("-spec and trace files are mutually exclusive")
		}
		failed = runSpec(*specName, *modeFlag, *quick, *seed, *withNoise, *jsonOut, *limit)
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			if !checkFile(path, *jsonOut, *limit) {
				failed = true
			}
		}
	default:
		log.Fatal("need trace files or -spec NAME (see -h)")
	}
	if failed {
		os.Exit(1)
	}
}

func runSpec(name, modeFlag string, quick bool, seed int64, withNoise, jsonOut bool, limit int) bool {
	spec, err := experiment.SpecByName(name, experiment.Options{Quick: quick})
	if err != nil {
		log.Fatal(err)
	}
	var modes []core.Mode
	if modeFlag == "all" {
		modes = core.AllModes()
	} else {
		for _, m := range strings.Split(modeFlag, ",") {
			modes = append(modes, core.Mode(strings.TrimSpace(m)))
		}
	}
	np := noise.Params{}
	if withNoise {
		np = noise.Cluster()
	}
	failed := false
	for _, mode := range modes {
		res, err := experiment.Run(spec, mode, seed, np, false)
		if err != nil {
			log.Fatalf("%s/%s: %v", name, mode, err)
		}
		rep := tracecheck.Verify(res.Trace, tracecheck.Options{})
		emit(fmt.Sprintf("%s/%s", name, mode), rep, jsonOut, limit)
		if !rep.OK() {
			failed = true
		}
	}
	return failed
}

func checkFile(path string, jsonOut bool, limit int) bool {
	tr, err := trace.ReadFile(path)
	if err != nil {
		// ReadFile stamps the path onto the error (RecordError
		// coordinates included), so it prints without re-prefixing.
		var rerr *trace.RecordError
		if errors.As(err, &rerr) {
			log.Printf("corrupt trace at %s", rerr)
		} else {
			log.Printf("%v", err)
		}
		return false
	}
	rep := tracecheck.Verify(tr, tracecheck.Options{})
	emit(path, rep, jsonOut, limit)
	return rep.OK()
}

func emit(label string, rep *tracecheck.Report, jsonOut bool, limit int) {
	if jsonOut {
		out := struct {
			Label string `json:"label"`
			*tracecheck.Report
		}{label, rep}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Printf("%s: ", label)
	rep.Render(os.Stdout, limit)
}
