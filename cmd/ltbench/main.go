// Command ltbench runs the repo's substrate and study benchmarks
// (internal/bench) several times, reports the median ns/op, B/op,
// allocs/op and events/sec of each, and writes the results to
// BENCH_<label>.json — the perf-trajectory record that lets any future
// optimisation PR show its before/after honestly.
//
// Usage:
//
//	ltbench -label pr4                 # full run, writes BENCH_pr4.json
//	ltbench -quick                     # CI smoke: short target, 2 reps
//	ltbench -bench Kernel -label dev   # only workloads matching a substring
//	ltbench -label pr4 -baseline BENCH_pr4-baseline.json
//	                                   # embed a pre-change baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

// File is the schema of a BENCH_<label>.json record.
type File struct {
	Label       string              `json:"label"`
	GoVersion   string              `json:"go_version"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	NumCPU      int                 `json:"numcpu"`
	KernelPar   int                 `json:"kernel_par"`
	Reps        int                 `json:"reps"`
	BenchtimeNs int64               `json:"benchtime_ns"`
	Results     []bench.Measurement `json:"results"`
	// Baseline, when present, is the same suite measured before the
	// change the label names — committed alongside so the delta is
	// reviewable without digging through git history.
	Baseline *File `json:"baseline,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltbench: ")
	label := flag.String("label", "dev", "benchmark label; output goes to BENCH_<label>.json")
	reps := flag.Int("reps", 5, "measurement repetitions per workload (median is reported)")
	benchtime := flag.Duration("benchtime", time.Second, "target wall time per measurement")
	quick := flag.Bool("quick", false, "CI smoke mode: 2 reps, 50ms benchtime")
	filter := flag.String("bench", "", "only run workloads whose name contains this substring")
	baseline := flag.String("baseline", "", "embed this previously-written BENCH json as the baseline")
	outDir := flag.String("o", ".", "directory for the BENCH_<label>.json output")
	noJSON := flag.Bool("nojson", false, "print the table only, write no file")
	kernelPar := flag.Int("kernel-par", 1,
		"kernel worker goroutines for the study workloads (the KernelPar* workloads fix their own counts)")
	flag.Parse()

	if *quick {
		*reps = 2
		*benchtime = 50 * time.Millisecond
	}
	out := &File{
		Label:       *label,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		KernelPar:   *kernelPar,
		Reps:        *reps,
		BenchtimeNs: benchtime.Nanoseconds(),
	}
	var base *File
	if *baseline != "" {
		b, err := readFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		b.Baseline = nil // never nest more than one level
		base = b
		out.Baseline = b
	}

	fmt.Printf("%-22s %14s %12s %12s %14s\n", "workload", "ns/op", "B/op", "allocs/op", "events/sec")
	for _, w := range bench.WorkloadsWith(bench.Options{KernelWorkers: *kernelPar}) {
		if *filter != "" && !strings.Contains(w.Name, *filter) {
			continue
		}
		ins, err := w.Make()
		if err != nil {
			log.Fatalf("%s: setup: %v", w.Name, err)
		}
		ms := make([]bench.Measurement, 0, *reps)
		for r := 0; r < *reps; r++ {
			m, err := bench.Measure(w.Name, ins, *benchtime)
			if err != nil {
				log.Fatalf("%s: %v", w.Name, err)
			}
			ms = append(ms, m)
		}
		med := bench.Median(ms)
		out.Results = append(out.Results, med)
		fmt.Printf("%-22s %14.0f %12.0f %12.1f %14s%s\n",
			med.Name, med.NsPerOp, med.BytesPerOp, med.AllocsPerOp,
			eps(med.EventsPerSec), delta(base, med))
	}

	if *noJSON {
		return
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", *outDir, *label)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func readFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &f, nil
}

func eps(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3g", v)
}

// delta annotates a result with its speed-up versus the baseline file.
func delta(base *File, m bench.Measurement) string {
	if base == nil {
		return ""
	}
	for _, b := range base.Results {
		if b.Name == m.Name && m.NsPerOp > 0 {
			return fmt.Sprintf("   [%.2fx vs %s]", b.NsPerOp/m.NsPerOp, base.Label)
		}
	}
	return ""
}
