// Command ltprop runs a delay-propagation study: for each timer mode it
// simulates one baseline and one faulted run of the same configuration
// and seed, aligns the two traces, and reports how the injected delay
// travelled — per-rank delay fronts, front speed in ranks per iteration,
// decay or absorption against communication slack, and the desync of the
// ranks' iteration phases — plus whether each logical clock's view of
// the front matches the tsc reference.
//
// Usage:
//
//	ltprop -spec Ring-16                               # default Afzal plan, all modes
//	ltprop -spec RingSlack-16 -mode tsc,lt_hwctr       # subset of modes
//	ltprop -spec Torus-16 -faults "oneoff:rank=5,at=0.005,delay=0.002"
//	ltprop -spec Ring-16 -quick -j 4 -cache ~/.ltcache # parallel, cached
//	ltprop -spec Ring-16 -json study.json              # deterministic JSON
//	ltprop -list                                       # show configurations
//
// Without -faults the plan is sized from an uninstrumented reference
// run: one one-off delay on the middle rank at 30% of the wall time,
// lasting 5% of it.  Output is byte-identical for any -j and for
// cache-served reruns.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/runcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltprop: ")
	spec := flag.String("spec", "Ring-16", "configuration name (see -list)")
	mode := flag.String("mode", "all", `timer modes: "all" or a comma list (tsc,lt_1,lt_loop,lt_bb,lt_stmt,lt_hwctr)`)
	seed := flag.Int64("seed", 1, "study seed")
	quick := flag.Bool("quick", false, "shrink the problem")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS)")
	kernelPar := flag.Int("kernel-par", 1,
		"kernel worker goroutines inside each simulation (1 = sequential; results are byte-identical)")
	cacheDir := flag.String("cache", "", "serve repeated runs from this run-cache directory")
	jsonOut := flag.String("json", "", "write the study as deterministic JSON here (- = stdout)")
	faultSpec := flag.String("faults", "",
		`fault plan (default: sized from a reference run), e.g. "oneoff:rank=8,at=0.01,delay=0.002"`)
	quiet := flag.Bool("quiet", false, "suppress the text report")
	progress := flag.Bool("progress", false, "live progress on stderr")
	liveAddr := flag.String("live", "",
		"serve the study observatory (/healthz, /metrics, /progress) on this address")
	list := flag.Bool("list", false, "list configurations and exit")
	flag.Parse()

	specOpts := experiment.Options{Quick: *quick}
	if *list {
		fmt.Println("pattern configurations (built for propagation studies):")
		printSpecs(experiment.PatternSpecs(specOpts))
		fmt.Println("\npaper configurations (also accepted):")
		printSpecs(experiment.Specs(specOpts))
		return
	}
	sp, err := experiment.SpecByName(*spec, specOpts)
	if err != nil {
		log.Fatal(err)
	}
	opts := experiment.PropagationOptions{
		Seed:          *seed,
		Workers:       *jobs,
		KernelWorkers: *kernelPar,
	}
	if *mode != "all" {
		for _, m := range strings.Split(*mode, ",") {
			opts.Modes = append(opts.Modes, core.Mode(strings.TrimSpace(m)))
		}
	}
	if *cacheDir != "" {
		cache, err := runcache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cache = cache
	}
	if *progress {
		opts.Progress = obs.NewProgress(os.Stderr, "ltprop", time.Now) //detlint:allow wallclock
	}
	if *liveAddr != "" {
		if opts.Metrics == nil {
			opts.Metrics = obs.NewRegistry()
		}
		if opts.Progress == nil {
			opts.Progress = obs.NewProgress(os.Stderr, "ltprop", time.Now) //detlint:allow wallclock
		}
		srv, err := live.Start(*liveAddr, live.Options{
			Registry: opts.Metrics,
			Progress: opts.Progress,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("live observatory on http://%s", srv.Addr())
	}

	var plan faults.Plan
	if *faultSpec != "" {
		if plan, err = faults.ParseSpec(*faultSpec); err != nil {
			log.Fatal(err)
		}
	} else if plan, err = experiment.DefaultPropagationPlanFor(sp, opts); err != nil {
		log.Fatal(err)
	}

	st, err := experiment.RunPropagationStudy(sp, opts, plan)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		experiment.PropagationReport(os.Stdout, st)
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := st.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "-" && !*quiet {
			fmt.Printf("\nstudy written to %s\n", *jsonOut)
		}
	}
}

func printSpecs(specs []experiment.Spec) {
	for _, s := range specs {
		fmt.Printf("  %-15s %3d ranks x %3d threads on %d node(s): %s\n",
			s.Name, s.Ranks, s.Threads, s.Nodes, s.Description)
	}
}
