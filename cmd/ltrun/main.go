// Command ltrun runs one benchmark configuration with one timer mode and
// writes the trace and/or the analysis profile to disk.
//
// Usage:
//
//	ltrun -config MiniFE-1 -mode lt_stmt -profile out.cube.json
//	ltrun -config TeaLeaf-2 -mode tsc -trace out.ltrc -seed 3
//	ltrun -config LULESH-1 -mode ""        # uninstrumented reference
//	ltrun -config MiniFE-1 -faults "oneoff:rank=2,at=0.01,delay=0.005"
//	ltrun -config MiniFE-1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	ltrun -list                            # show configurations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/profiling"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltrun: ")
	config := flag.String("config", "MiniFE-1", "configuration name (see -list)")
	mode := flag.String("mode", "lt_stmt", `timer mode (tsc, lt_1, lt_loop, lt_bb, lt_stmt, lt_hwctr; "" = reference)`)
	seed := flag.Int64("seed", 1, "noise seed")
	quick := flag.Bool("quick", false, "shrink the problem")
	quiet := flag.Bool("quiet", false, "suppress the profile summary")
	noNoise := flag.Bool("no-noise", false, "disable all noise sources")
	faultSpec := flag.String("faults", "",
		`deterministic fault plan, e.g. "oneoff:rank=2,at=0.01,delay=0.005;straggler:rank=0,factor=1.5"`)
	kernelPar := flag.Int("kernel-par", 1,
		"kernel worker goroutines for the conservative parallel event loop (1 = sequential; results are byte-identical)")
	traceOut := flag.String("trace", "", "write the binary trace here (chunked compressed format)")
	traceV1 := flag.Bool("trace-v1", false, "write the trace in the legacy monolithic version-1 format")
	profOut := flag.String("profile", "", "write the analysis profile (JSON) here")
	liveAddr := flag.String("live", "",
		"serve the run observatory on this address (host:port) while the run executes")
	liveLinger := flag.Duration("live-linger", 0,
		"keep the observatory serving this long after the run completes (for scrapers)")
	list := flag.Bool("list", false, "list configurations and exit")
	prof := profiling.AddFlags()
	flag.Parse()
	prof.Start()
	defer prof.Stop()

	specOpts := experiment.Options{Quick: *quick}
	if *list {
		for _, s := range experiment.Specs(specOpts) {
			fmt.Printf("%-10s %3d ranks x %3d threads on %d node(s): %s\n",
				s.Name, s.Ranks, s.Threads, s.Nodes, s.Description)
		}
		return
	}
	spec, err := experiment.SpecByName(*config, specOpts)
	if err != nil {
		log.Fatal(err)
	}
	np := noise.Cluster()
	if *noNoise {
		np = noise.Params{}
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		p, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan = &p
	}
	var cfg *measure.Config
	if *mode != "" {
		c := measure.DefaultConfig(core.Mode(*mode))
		cfg = &c
	}
	opts := experiment.RunOptions{
		Cfg: cfg, Seed: *seed, Noise: np, Faults: plan,
		Analyze: *profOut != "" || !*quiet, KernelWorkers: *kernelPar,
	}

	// Live observatory: spill the trace to a sidecar file as it is
	// recorded (AutoFlush so the tail sees every sealed chunk) and serve
	// the monitoring endpoints while the run executes.  The sidecar is a
	// separate file from -trace: the official artifact is still written
	// at the end, byte-identical to a run without -live.
	var spillClose func()
	if *liveAddr != "" {
		if cfg == nil {
			log.Fatal("-live requires an instrumented run (non-empty -mode)")
		}
		if *kernelPar > 1 {
			log.Fatal("-live requires the sequential kernel (-kernel-par 1)")
		}
		spillPath := *traceOut + ".live"
		if *traceOut == "" {
			f, err := os.CreateTemp("", "ltrun-live-*.ltrc")
			if err != nil {
				log.Fatal(err)
			}
			spillPath = f.Name()
			f.Close()
			defer os.Remove(spillPath)
		}
		sf, err := os.Create(spillPath)
		if err != nil {
			log.Fatal(err)
		}
		cw := trace.NewChunkWriter(sf, *mode)
		cw.AutoFlush = true
		spillClose = func() {
			if err := cw.Close(); err != nil {
				log.Printf("live spill: %v", err)
			}
			if err := sf.Close(); err != nil {
				log.Printf("live spill: %v", err)
			}
		}
		opts.TraceSink = cw
		opts.Metrics = obs.NewRegistry()
		opts.Timeline = &obs.Timeline{}
		srv, err := live.Start(*liveAddr, live.Options{
			Registry:  opts.Metrics,
			Timeline:  opts.Timeline,
			TracePath: spillPath,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("live observatory on http://%s (spill %s)\n", srv.Addr(), spillPath)
	}

	res, err := experiment.RunWithOptions(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	if spillClose != nil {
		// Seal the sidecar (index + trailer) so the tail's next poll sees
		// the run complete.
		spillClose()
	}
	if plan != nil {
		fmt.Printf("armed faults: %s\n", plan.Describe())
	}
	fmt.Printf("%s (%s): wall %.3f s", spec.Name, orRef(*mode), res.Wall)
	if res.Trace != nil {
		fmt.Printf(", %d events on %d locations", res.Trace.NumEvents(), len(res.Trace.Locs))
	}
	fmt.Println()
	if res.Trace != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		werr := error(nil)
		if *traceV1 {
			werr = res.Trace.Write(f)
		} else {
			werr = trace.WriteChunked(f, res.Trace)
		}
		if werr != nil {
			log.Fatal(werr)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if res.Profile != nil {
		if *profOut != "" {
			f, err := os.Create(*profOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Profile.Write(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("profile written to %s\n", *profOut)
		}
		if !*quiet {
			res.Profile.RenderMetricTree(os.Stdout)
		}
	}
	if *liveAddr != "" && *liveLinger > 0 {
		fmt.Printf("lingering %s for observatory clients\n", *liveLinger)
		time.Sleep(*liveLinger)
	}
}

func orRef(mode string) string {
	if mode == "" {
		return "reference"
	}
	return mode
}
