// Command lttrace inspects binary traces written by ltrun: summary
// statistics, per-region event counts, and the largest in-region
// timestamp gaps (useful for debugging clock behaviour).
//
// Usage:
//
//	lttrace trace.ltrc
//	lttrace -gaps 20 trace.ltrc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/scalasca"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lttrace: ")
	gaps := flag.Int("gaps", 10, "largest in-region stamp gaps to show")
	events := flag.Int("events", 0, "dump the first N events of every location (otf2-print style)")
	loc := flag.Int("loc", -1, "with -events: restrict to one location index")
	critpath := flag.Bool("critpath", false, "run the critical-path analysis and show its top contributors")
	timeline := flag.Int("timeline", 0, "draw an ASCII timeline this many columns wide")
	tlRows := flag.Int("timeline-rows", 32, "with -timeline: locations to draw")
	stat := flag.Bool("stat", false, "print storage statistics (chunks, compression, index health) and exit")
	follow := flag.Bool("follow", false, "with -stat: refresh the table live while the trace is still being written")
	interval := flag.Duration("interval", time.Second, "with -follow: refresh cadence")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("need exactly one trace file")
	}
	if *stat {
		var err error
		if *follow {
			err = followStat(flag.Arg(0), *interval)
		} else {
			err = statFile(flag.Arg(0))
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *follow {
		log.Fatal("-follow requires -stat")
	}
	tr, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock %s, %d locations, %d regions, %d events\n",
		tr.Clock, len(tr.Locs), len(tr.Regions), tr.NumEvents())

	if *timeline > 0 {
		trace.RenderTimeline(os.Stdout, tr, *timeline, *tlRows)
		return
	}

	if *critpath {
		cp, err := scalasca.CriticalPathAnalysis(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncritical path: %.4g ticks over %d segments\n", cp.Total, cp.Segments)
		for _, e := range cp.TopPaths(15) {
			fmt.Printf("  %6.2f%%  %s\n", e.Percent, e.Path)
		}
		return
	}

	if *events > 0 {
		for li, l := range tr.Locs {
			if *loc >= 0 && li != *loc {
				continue
			}
			fmt.Printf("\nlocation %d (rank %d thread %d):\n", li, l.Rank, l.Thread)
			for ei, e := range l.Events {
				if ei >= *events {
					fmt.Printf("  ... %d more\n", len(l.Events)-*events)
					break
				}
				switch e.Kind {
				case trace.EvEnter, trace.EvExit:
					fmt.Printf("  %12d %-8s %s\n", e.Time, e.Kind, tr.RegionName(e.Region))
				case trace.EvSend, trace.EvRecv:
					fmt.Printf("  %12d %-8s peer=%d tag=%d bytes=%d\n", e.Time, e.Kind, e.A, e.B, e.C)
				case trace.EvCollEnd:
					fmt.Printf("  %12d %-8s comm=%d seq=%d bytes=%d\n", e.Time, e.Kind, e.A, e.B, e.C)
				default:
					fmt.Printf("  %12d %-8s a=%d b=%d\n", e.Time, e.Kind, e.A, e.B)
				}
			}
		}
		return
	}

	// Events per region.
	perRegion := make([]int, len(tr.Regions))
	type gap struct {
		loc    int
		region string
		dt, at uint64
	}
	var found []gap
	for li, l := range tr.Locs {
		var stack []trace.RegionID
		var prev uint64
		for _, e := range l.Events {
			if e.Kind == trace.EvEnter || e.Kind == trace.EvExit {
				perRegion[e.Region]++
			}
			if dt := e.Time - prev; len(stack) > 0 && dt > 0 {
				found = append(found, gap{li, tr.RegionName(stack[len(stack)-1]), dt, e.Time})
			}
			prev = e.Time
			switch e.Kind {
			case trace.EvEnter:
				stack = append(stack, e.Region)
			case trace.EvExit:
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			}
		}
	}
	fmt.Println("\nevents per region:")
	order := make([]int, len(tr.Regions))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return perRegion[order[a]] > perRegion[order[b]] })
	for _, i := range order {
		if perRegion[i] == 0 {
			continue
		}
		fmt.Printf("  %-50s %8d  (%s)\n", tr.Regions[i].Name, perRegion[i], tr.Regions[i].Role)
	}
	sort.Slice(found, func(a, b int) bool { return found[a].dt > found[b].dt })
	fmt.Println("\nlargest in-region stamp gaps:")
	for i := 0; i < *gaps && i < len(found); i++ {
		g := found[i]
		fmt.Printf("  loc %-4d %-50s dt %-12d at %d\n", g.loc, g.region, g.dt, g.at)
	}
}

// statFile prints the storage-level anatomy of a trace file.  Chunked
// (version-2) files report per-location chunk counts, compressed versus
// raw bytes and the virtual-time span straight from the chunk index —
// without decompressing a single event.  Monolithic version-1 files are
// materialized and reported with the fields that apply.
func statFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	cf, err := trace.OpenChunkFile(path)
	if err != nil {
		// Not a chunked file (or unreadable as one): fall back to the
		// monolithic reader.
		tr, rerr := trace.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("%v (chunked read also failed: %v)", rerr, err)
		}
		fmt.Printf("%s: monolithic v1, %d bytes on disk\n", path, fi.Size())
		fmt.Printf("clock %s, %d locations, %d regions, %d events\n",
			tr.Clock, len(tr.Locs), len(tr.Regions), tr.NumEvents())
		for li, l := range tr.Locs {
			var lo, hi uint64
			if len(l.Events) > 0 {
				lo, hi = l.Events[0].Time, l.Events[len(l.Events)-1].Time
			}
			fmt.Printf("  loc %-4d r%dt%d %10d events  vtime [%d, %d]\n",
				li, l.Rank, l.Thread, len(l.Events), lo, hi)
		}
		return nil
	}
	defer cf.Close()

	indexLine := "index: missing, recovered by sequential scan"
	switch {
	case cf.IndexOK:
		indexLine = "index: ok (O(log n) range seeks available)"
	case cf.Damage != nil:
		indexLine = fmt.Sprintf("index: MISSING, recovered by sequential scan; damage: %v", cf.Damage)
	}
	renderChunkStats(path, fi.Size(), cf, indexLine)
	return nil
}

// renderChunkStats prints the storage-anatomy table of a chunked trace
// view — a fully opened file or a live tail's sealed-prefix snapshot.
func renderChunkStats(path string, size int64, cf *trace.ChunkFile, indexLine string) {
	chunks := cf.Chunks()
	locs := cf.Locs()
	type locStat struct {
		chunks   int
		raw      int64
		comp     int64
		events   int
		lo, hi   uint64
		haveSpan bool
	}
	stats := make([]locStat, len(locs))
	var totRaw, totComp int64
	for _, c := range chunks {
		s := &stats[c.Loc]
		s.chunks++
		s.raw += int64(c.RawLen)
		s.comp += int64(c.CompLen)
		s.events += c.Events
		if !s.haveSpan || c.FirstTime < s.lo {
			s.lo = c.FirstTime
		}
		if !s.haveSpan || c.LastTime > s.hi {
			s.hi = c.LastTime
		}
		s.haveSpan = true
		totRaw += int64(c.RawLen)
		totComp += int64(c.CompLen)
	}
	events := 0
	for _, s := range stats {
		events += s.events
	}
	fmt.Printf("%s: chunked v2, %d bytes on disk\n", path, size)
	fmt.Printf("clock %s, %d locations, %d regions, %d events, %d chunks\n",
		cf.Clock, len(locs), len(cf.Regions), events, len(chunks))
	fmt.Println(indexLine)
	ratio := func(raw, comp int64) float64 {
		if comp == 0 {
			return 0
		}
		return float64(raw) / float64(comp)
	}
	for li, s := range stats {
		fmt.Printf("  loc %-4d r%dt%d %10d events %6d chunks  %12d -> %-12d (%.2fx)  vtime [%d, %d]\n",
			li, locs[li].Rank, locs[li].Thread, s.events, s.chunks,
			s.raw, s.comp, ratio(s.raw, s.comp), s.lo, s.hi)
	}
	fmt.Printf("payload: %d raw -> %d compressed (%.2fx); %.2f bytes/event on disk\n",
		totRaw, totComp, ratio(totRaw, totComp), safeDiv(float64(size), float64(events)))
}

// followStat tails a trace still being written, re-rendering the
// storage table from the sealed prefix at each refresh until the
// writer seals the trailer.  Trailer-less files are exactly what the
// tail reader is for, so this never errors on a missing index.
func followStat(path string, interval time.Duration) error {
	tc, err := trace.Follow(path)
	if err != nil {
		return err
	}
	defer tc.Close()
	for {
		_, done, perr := tc.Poll()
		var size int64
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		indexLine := fmt.Sprintf("following: %d sealed bytes ingested", tc.Offset())
		if te := tc.Torn(); te != nil {
			indexLine += fmt.Sprintf(" (writer mid-record: %v)", te)
		}
		if done {
			indexLine = "index: ok — trace sealed, tail complete"
		}
		renderChunkStats(path, size, tc.Snapshot(), indexLine)
		if done {
			return nil
		}
		if perr != nil && tc.Err() != nil {
			return fmt.Errorf("trace damaged while following: %w", perr)
		}
		fmt.Println()
		time.Sleep(interval)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
