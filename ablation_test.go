package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/jaccard"
	"repro/internal/measure"
	"repro/internal/noise"
	"repro/internal/vclock"
)

// Ablation benchmarks for the design choices DESIGN.md calls out.  Each
// reports its effect as custom benchmark metrics so `go test -bench
// Ablation` doubles as the ablation study.

// BenchmarkAblationPiggyback removes the logical-clock synchronisation
// (Algorithm 1 step 2) and counts the resulting clock-condition
// violations; with piggybacks the count must be zero.
func BenchmarkAblationPiggyback(b *testing.B) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	violations := func(disable bool) int {
		cfg := measure.DefaultConfig(core.ModeStmt)
		cfg.DisablePiggyback = disable
		res, err := experiment.RunWithConfig(spec, &cfg, 1, noise.Cluster(), false)
		if err != nil {
			b.Fatal(err)
		}
		v, err := vclock.Validate(res.Trace)
		if err != nil {
			b.Fatal(err)
		}
		return len(v)
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = violations(false)
		without = violations(true)
	}
	if with != 0 {
		b.Fatalf("piggybacked trace has %d clock-condition violations", with)
	}
	if without == 0 {
		b.Fatal("ablated trace has no violations; the ablation is vacuous")
	}
	b.ReportMetric(float64(with), "violations-with-sync")
	b.ReportMetric(float64(without), "violations-without-sync")
}

// BenchmarkAblationWeightedStmt compares the future-work weighted
// statement model (lt_wstmt) against plain lt_stmt by their Jaccard
// similarity to tsc on MiniFE-1.
func BenchmarkAblationWeightedStmt(b *testing.B) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	var jStmt, jWStmt float64
	for i := 0; i < b.N; i++ {
		tsc, err := experiment.Run(spec, core.ModeTSC, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		stmt, err := experiment.Run(spec, core.ModeStmt, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		wstmt, err := experiment.Run(spec, core.ModeWStmt, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		jStmt = jaccard.Score(stmt.Profile.MCMap(), tsc.Profile.MCMap())
		jWStmt = jaccard.Score(wstmt.Profile.MCMap(), tsc.Profile.MCMap())
	}
	b.ReportMetric(jStmt, "J-lt_stmt")
	b.ReportMetric(jWStmt, "J-lt_wstmt")
}

// BenchmarkAblationCombinedCounter compares the future-work combined
// instruction+memory counter (lt_hwcomb) against plain lt_hwctr on
// MiniFE-2, whose memory contention is invisible to every count-based
// clock: the combined counter should score closer to tsc.
func BenchmarkAblationCombinedCounter(b *testing.B) {
	spec, err := experiment.SpecByName("MiniFE-2", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	var jHw, jComb float64
	for i := 0; i < b.N; i++ {
		tsc, err := experiment.Run(spec, core.ModeTSC, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		hw, err := experiment.Run(spec, core.ModeHwctr, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		comb, err := experiment.Run(spec, core.ModeHwComb, 1, noise.Cluster(), true)
		if err != nil {
			b.Fatal(err)
		}
		jHw = jaccard.Score(hw.Profile.MCMap(), tsc.Profile.MCMap())
		jComb = jaccard.Score(comb.Profile.MCMap(), tsc.Profile.MCMap())
	}
	if jComb <= jHw {
		b.Logf("note: combined counter (%.3f) did not beat lt_hwctr (%.3f) on this run", jComb, jHw)
	}
	b.ReportMetric(jHw, "J-lt_hwctr")
	b.ReportMetric(jComb, "J-lt_hwcomb")
}

// BenchmarkAblationBufferCap removes the per-location trace-buffer cap
// and reports the TeaLeaf-2 tsc overhead with and without it — the
// cache-pollution mechanism behind the paper's Table II.
func BenchmarkAblationBufferCap(b *testing.B) {
	spec, err := experiment.SpecByName("TeaLeaf-2", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	overhead := func(capBytes float64) float64 {
		ref, err := experiment.Run(spec, "", 1, noise.Cluster(), false)
		if err != nil {
			b.Fatal(err)
		}
		cfg := measure.DefaultConfig(core.ModeTSC)
		cfg.Overhead.BufferCapBytes = capBytes
		ins, err := experiment.RunWithConfig(spec, &cfg, 1, noise.Cluster(), false)
		if err != nil {
			b.Fatal(err)
		}
		return 100 * (ins.Wall - ref.Wall) / ref.Wall
	}
	var capped, uncapped, none float64
	for i := 0; i < b.N; i++ {
		capped = overhead(measure.DefaultOverhead().BufferCapBytes)
		uncapped = overhead(1e12) // effectively unlimited growth
		none = overhead(1)        // buffers pinned to ~nothing
	}
	if uncapped < capped {
		b.Fatalf("uncapped buffers (%.1f%%) should cost at least the capped ones (%.1f%%)", uncapped, capped)
	}
	b.ReportMetric(none, "overhead%-no-buffers")
	b.ReportMetric(capped, "overhead%-capped")
	b.ReportMetric(uncapped, "overhead%-uncapped")
}

// BenchmarkAblationNoiseLevels reports tsc run-to-run stability (minimum
// pairwise Jaccard over 3 repetitions) at increasing noise amplitudes,
// with lt_stmt as the flat 1.0 control.
func BenchmarkAblationNoiseLevels(b *testing.B) {
	spec, err := experiment.SpecByName("MiniFE-1", experiment.Options{Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	minJ := func(mode core.Mode, scale float64) float64 {
		np := noise.Cluster().Scale(scale)
		var maps []map[string]float64
		for rep := 0; rep < 3; rep++ {
			res, err := experiment.Run(spec, mode, int64(rep+1), np, true)
			if err != nil {
				b.Fatal(err)
			}
			maps = append(maps, res.Profile.MCMap())
		}
		return jaccard.MinPairwise(maps)
	}
	var tscLow, tscHigh, stmtHigh float64
	for i := 0; i < b.N; i++ {
		tscLow = minJ(core.ModeTSC, 1)
		tscHigh = minJ(core.ModeTSC, 4)
		stmtHigh = minJ(core.ModeStmt, 4)
	}
	if stmtHigh != 1 {
		b.Fatalf("lt_stmt rep-to-rep J = %g under 4x noise, want exactly 1", stmtHigh)
	}
	b.ReportMetric(tscLow, "minJ-tsc-1x")
	b.ReportMetric(tscHigh, "minJ-tsc-4x")
	b.ReportMetric(stmtHigh, "minJ-stmt-4x")
}
